/**
 * @file
 * HRISC: the host instruction-set architecture.
 *
 * A simple RISC ISA in the spirit of the paper's host machine: 64
 * integer registers logically split between TOL (x0..x31, x0 wired to
 * zero) and the translated application (x32..x63), 32 FP registers,
 * loads/stores with base+displacement addressing only, compare-and-
 * branch, and JAL/JALR for calls and indirect jumps. Fixed 4-byte
 * instructions (only the PC arithmetic matters to the timing model;
 * instructions are simulated as structs).
 *
 * Execution-unit classes follow Table I's narrative: each of the two
 * symmetric pipes has a simple (1-cycle) and a complex (2-cycle)
 * integer unit and a simple (2-cycle) and a complex (5-cycle) FP unit.
 */

#ifndef DARCO_HOST_ISA_HH
#define DARCO_HOST_ISA_HH

#include <cassert>
#include <cstdint>

namespace darco::host {

/** Host opcodes. */
enum class HOp : uint8_t {
    // Integer register-register
    ADD = 0, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
    MUL, MULH, DIV, REM,
    // Integer register-immediate
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, SLTUI,
    LUI,      ///< rd = imm << 12
    // Memory (size field selects 1/4/8 bytes; LD zero-extends)
    LD, ST,
    FLD, FST, ///< FP loads/stores (8 bytes)
    // Control (branch targets are absolute host addresses in imm)
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    JAL,      ///< rd = link (x0 for plain jump); target in imm
    JALR,     ///< rd = link; target = rs1 (+ imm)
    // Floating point
    FADD, FSUB, FMUL, FDIV, FSQRT, FABS, FNEG, FMOV,
    FCVT_IF,  ///< f[rd] = (double)(int32)x[rs1]
    FCVT_FI,  ///< x[rd] = trunc-to-int32(f[rs1]) (x86 clamp semantics)
    FLT,      ///< x[rd] = f[rs1] < f[rs2]
    FLE,      ///< x[rd] = f[rs1] <= f[rs2]
    FEQ,      ///< x[rd] = f[rs1] == f[rs2]
    FUNORD,   ///< x[rd] = isnan(f[rs1]) || isnan(f[rs2])
    NOP,
    NumOps,
};

/** Execution-unit class (selects latency and issue unit). */
enum class ExecClass : uint8_t {
    IntSimple = 0,  ///< 1 cycle
    IntComplex,     ///< 2 cycles
    FpSimple,       ///< 2 cycles
    FpComplex,      ///< 5 cycles
    Mem,            ///< address calc + cache access in EXE
    Branch,         ///< resolves in EXE
    NumClasses,
};

/** Static per-opcode properties of the host ISA. */
struct HOpInfo
{
    const char *name;
    ExecClass execClass;
    bool isLoad;
    bool isStore;
    bool isBranch;
    bool isCondBranch;
    bool isIndirect;    ///< JALR
    bool fpDst;         ///< rd names an FP register
    bool fpSrc1;
    bool fpSrc2;
};

namespace detail {
/** Per-opcode property table (defined in isa.cc; indexed by HOp). */
extern const HOpInfo kHopTable[];
} // namespace detail

/**
 * Properties of @p op. Inline table access: this sits on the
 * per-simulated-instruction hot path of both the functional executor
 * and the timing pipeline, so the bounds check is debug-only.
 */
inline const HOpInfo &
hopInfo(HOp op)
{
    assert(op < HOp::NumOps && "bad host opcode");
    return detail::kHopTable[static_cast<unsigned>(op)];
}

inline const char *hopName(HOp op) { return hopInfo(op).name; }

/** Latency in cycles for an execution class (memory adds cache time). */
unsigned execLatency(ExecClass cls);

/** No-register marker for rd/rs fields. */
constexpr uint8_t kNoReg = 0xFF;

/**
 * One host instruction. Branch/jump targets are absolute host
 * addresses carried in imm; patching a chained exit rewrites imm.
 */
struct HostInst
{
    HOp op = HOp::NOP;
    uint8_t rd = kNoReg;
    uint8_t rs1 = kNoReg;
    uint8_t rs2 = kNoReg;
    uint8_t size = 8;        ///< memory access size
    uint8_t attr = 0;        ///< attribution tag (timing/record.hh Module)
    /**
     * Set on region-leaving transfer instructions (exit-stub JAL,
     * IBTC-probe JALR): executing this instruction retires
     * `guestIndex` guest instructions. Body instructions carry 0.
     */
    bool guestBoundary = false;
    uint16_t guestIndex = 0;
    /**
     * While a region is under construction, branch targets that point
     * inside the region are instruction *indices*; install() fixes
     * them up to absolute host addresses and clears this flag.
     */
    bool targetIsIndex = false;
    int64_t imm = 0;
};

/** Number of architectural integer registers. */
constexpr unsigned kNumIntRegs = 64;
/** Number of architectural FP registers. */
constexpr unsigned kNumFpRegs = 32;

/** Host instructions occupy 4 bytes each in the simulated I-space. */
constexpr uint64_t kHostInstBytes = 4;

} // namespace darco::host

#endif // DARCO_HOST_ISA_HH
