/**
 * @file
 * Functional executor for translated host code.
 *
 * Executes HostInst regions from the code store against the simulated
 * host memory and register file, emitting one timing Record per
 * executed instruction. Control returns to the TOL runtime whenever
 * the next PC lands on a runtime service address (region exit, IBTC
 * miss, promotion trigger, guest HALT) or when the guest-instruction
 * budget for the current run is exhausted.
 */

#ifndef DARCO_HOST_EXECUTOR_HH
#define DARCO_HOST_EXECUTOR_HH

#include <array>
#include <cstdint>

#include "common/cancel.hh"
#include "common/paged_memory.hh"
#include "host/address_map.hh"
#include "host/code_store.hh"
#include "host/isa.hh"
#include "timing/record.hh"

namespace darco::host {

/** Host memory: 32-bit paged space shared by guest data and TOL. */
using Memory = PagedMemory<uint32_t>;

class Executor
{
  public:
    enum class StopReason : uint8_t {
        Dispatch,   ///< region exit through a stub (x58 = target EIP)
        IbtcMiss,   ///< inline IBTC probe missed (x58 = target EIP)
        Promote,    ///< BB execution counter crossed SB threshold
        Halt,       ///< guest executed HALT
        Budget,     ///< guest-instruction budget exhausted mid-run
    };

    struct Stop
    {
        StopReason reason;
        CodeRegion *region;    ///< region that was executing
        uint32_t exitId;       ///< x59 at stop (valid for Dispatch)
        uint32_t guestEip;     ///< guest EIP at stop (valid for Budget)
    };

    Executor(CodeStore &code_store, Memory &memory,
             timing::RecordSink &record_sink)
        : store(code_store), mem(memory), sink(record_sink)
    {}

    /** Integer register file (x0 reads as zero). */
    std::array<uint32_t, kNumIntRegs> x{};
    /** FP register file. */
    std::array<double, kNumFpRegs> f{};

    /**
     * Run translated code starting at @p pc (which must lie inside an
     * installed region) until a service stop or until @p guest_budget
     * guest instructions have been retired.
     *
     * Timing records are built into a small ring buffer and drained
     * into the sink in batches (and always fully drained before
     * returning), so the per-instruction cost is a struct fill, not a
     * virtual call into every timing pipeline.
     */
    Stop run(uint32_t pc, uint64_t guest_budget);

    /** Guest instructions retired by the most recent run(). */
    uint64_t lastGuestRetired() const { return lastRetired; }

    /**
     * Cooperative cancellation (nullptr = never cancelled). Polled
     * only when the record batch drains — every kRecordBatch
     * instructions, off the per-instruction path — and honored by
     * collapsing the remaining budget to zero, so a cancelled run
     * stops through the ordinary Budget path at the next clean
     * region-entry guest boundary with exact partial accounting.
     */
    void setCancelToken(const common::CancelToken *token)
    {
        cancel = token;
    }

    /** Host instructions executed across all runs. */
    uint64_t hostExecuted() const { return hostCount; }

    /** Guest instructions retired in BB / SB regions (Figure 5b). */
    uint64_t bbGuestRetired() const { return bbRetired; }
    uint64_t sbGuestRetired() const { return sbRetired; }

    /** Region entries by kind (bookkeeping). */
    uint64_t bbRegionEntries() const { return bbEntries; }
    uint64_t sbRegionEntries() const { return sbEntries; }

    /** Guest indirect branches retired inside translated code. */
    uint64_t indirectRetired() const { return indirectCount; }

  private:
    uint32_t readReg(uint8_t r) const { return r ? x[r] : 0; }

    void
    writeReg(uint8_t r, uint32_t value)
    {
        if (r)
            x[r] = value;
    }

    /** Record batch capacity (drained whenever full). */
    static constexpr size_t kRecordBatch = 256;

    /**
     * Next free batch slot. The caller overwrites every field (the
     * region record templates cover the full struct), so the slot is
     * not cleared here.
     */
    timing::Record &
    nextRecord()
    {
        if (recCount == kRecordBatch)
            flushRecords();
        return recBatch[recCount++];
    }

    void
    flushRecords()
    {
        if (recCount) {
            sink.consumeBatch(recBatch.data(), recCount);
            recCount = 0;
        }
        // The cancellation batch boundary: collapsing the budget makes
        // run()'s existing Budget check stop at the next region-entry
        // guest boundary. Completed work keeps its exact accounting.
        if (cancel && cancel->requested())
            budgetCap = 0;
    }

    CodeStore &store;
    Memory &mem;
    timing::RecordSink &sink;
    const common::CancelToken *cancel = nullptr;
    /** Effective budget of the in-flight run() (see flushRecords). */
    uint64_t budgetCap = 0;
    uint64_t lastRetired = 0;
    uint64_t hostCount = 0;
    uint64_t bbRetired = 0;
    uint64_t sbRetired = 0;
    uint64_t bbEntries = 0;
    uint64_t sbEntries = 0;
    uint64_t indirectCount = 0;

    std::array<timing::Record, kRecordBatch> recBatch;
    size_t recCount = 0;
};

} // namespace darco::host

#endif // DARCO_HOST_EXECUTOR_HH
