#include "host/disasm.hh"

#include "common/logging.hh"
#include "host/address_map.hh"

namespace darco::host {

std::string
hostRegName(uint8_t reg)
{
    static const char *guest_names[] = {
        "gEAX", "gECX", "gEDX", "gEBX", "gESP", "gEBP", "gESI", "gEDI",
    };
    if (reg == hreg::Zero)
        return "x0";
    if (reg >= hreg::GuestGpr0 && reg < hreg::GuestGpr0 + 8)
        return guest_names[reg - hreg::GuestGpr0];
    switch (reg) {
      case hreg::FlagZ: return "fZ";
      case hreg::FlagS: return "fS";
      case hreg::FlagC: return "fC";
      case hreg::FlagO: return "fO";
      case hreg::FlagP: return "fP";
      case hreg::SbThreshold: return "xTHR";
      case hreg::IbtcBase: return "xIBTC";
      case hreg::CtxBase: return "xCTX";
      case hreg::ExitTarget: return "xTGT";
      case hreg::ExitId: return "xEID";
      default: break;
    }
    return strprintf("x%u", reg);
}

namespace {

std::string
fpRegName(uint8_t reg)
{
    if (reg >= hreg::GuestFpr0 && reg < hreg::GuestFpr0 + 8)
        return strprintf("gF%u", reg - hreg::GuestFpr0);
    return strprintf("f%u", reg);
}

std::string
regName(uint8_t reg, bool fp)
{
    if (reg == kNoReg)
        return "-";
    return fp ? fpRegName(reg) : hostRegName(reg);
}

std::string
targetName(int64_t imm, bool is_index)
{
    const uint32_t target = static_cast<uint32_t>(imm);
    if (is_index)
        return strprintf("@%lld", static_cast<long long>(imm));
    switch (target) {
      case amap::kSvcDispatch: return "svc:dispatch";
      case amap::kSvcIbtcMiss: return "svc:ibtc-miss";
      case amap::kSvcPromote:  return "svc:promote";
      case amap::kSvcHalt:     return "svc:halt";
      default: return strprintf("0x%08x", target);
    }
}

} // namespace

std::string
disassemble(const HostInst &inst, uint32_t pc)
{
    (void)pc;
    const HOpInfo &info = hopInfo(inst.op);
    std::string s = hopName(inst.op);

    switch (inst.op) {
      case HOp::LD:
      case HOp::FLD:
        s += strprintf(" %s, [%s%+lld]:%u",
                       regName(inst.rd, info.fpDst).c_str(),
                       regName(inst.rs1, false).c_str(),
                       static_cast<long long>(inst.imm), inst.size);
        break;
      case HOp::ST:
      case HOp::FST:
        s += strprintf(" [%s%+lld]:%u, %s",
                       regName(inst.rs1, false).c_str(),
                       static_cast<long long>(inst.imm), inst.size,
                       regName(inst.rs2, info.fpSrc2).c_str());
        break;
      case HOp::BEQ: case HOp::BNE: case HOp::BLT: case HOp::BGE:
      case HOp::BLTU: case HOp::BGEU:
        s += strprintf(" %s, %s -> %s",
                       regName(inst.rs1, false).c_str(),
                       regName(inst.rs2, false).c_str(),
                       targetName(inst.imm, inst.targetIsIndex).c_str());
        break;
      case HOp::JAL:
        s += strprintf(" %s -> %s", regName(inst.rd, false).c_str(),
                       targetName(inst.imm, inst.targetIsIndex).c_str());
        break;
      case HOp::JALR:
        s += strprintf(" %s, (%s)", regName(inst.rd, false).c_str(),
                       regName(inst.rs1, false).c_str());
        break;
      case HOp::LUI:
        s += strprintf(" %s, 0x%llx", regName(inst.rd, false).c_str(),
                       static_cast<unsigned long long>(
                           static_cast<uint32_t>(inst.imm)));
        break;
      case HOp::ADDI: case HOp::ANDI: case HOp::ORI: case HOp::XORI:
      case HOp::SLLI: case HOp::SRLI: case HOp::SRAI: case HOp::SLTI:
      case HOp::SLTUI:
        s += strprintf(" %s, %s, %lld",
                       regName(inst.rd, false).c_str(),
                       regName(inst.rs1, false).c_str(),
                       static_cast<long long>(inst.imm));
        break;
      case HOp::NOP:
        break;
      default:
        s += strprintf(" %s, %s",
                       regName(inst.rd, info.fpDst).c_str(),
                       regName(inst.rs1, info.fpSrc1).c_str());
        if (inst.rs2 != kNoReg)
            s += strprintf(", %s",
                           regName(inst.rs2, info.fpSrc2).c_str());
        break;
    }

    if (inst.guestBoundary)
        s += strprintf("   ; retire %u", inst.guestIndex);
    return s;
}

std::string
disassembleRegion(const CodeRegion &region)
{
    std::string s = strprintf(
        "%s region @host 0x%08x for guest 0x%08x (%zu insts%s)\n",
        region.kind == RegionKind::Superblock ? "superblock"
                                              : "basic-block",
        region.hostBase, region.guestEntry, region.insts.size(),
        region.superseded ? ", superseded" : "");
    for (size_t i = 0; i < region.insts.size(); ++i) {
        const uint32_t pc = region.hostBase +
            static_cast<uint32_t>(i) * kHostInstBytes;
        s += strprintf("  %08x:  %s\n", pc,
                       disassemble(region.insts[i], pc).c_str());
    }
    for (size_t e = 0; e < region.exits.size(); ++e) {
        const ExitInfo &exit = region.exits[e];
        s += strprintf("  exit %zu: %s%starget 0x%08x, retires %u, "
                       "flags 0x%x%s\n",
                       e, exit.indirect ? "indirect " : "",
                       exit.halt ? "halt " : "", exit.guestTarget,
                       exit.guestInstsRetired, exit.flagMask,
                       exit.chained ? ", chained" : "");
    }
    return s;
}

} // namespace darco::host
