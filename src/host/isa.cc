#include "host/isa.hh"

#include "common/logging.hh"

namespace darco::host {

namespace detail {

// name, class, isLoad, isStore, isBranch, isCond, isInd, fpDst, fpS1, fpS2
const HOpInfo kHopTable[] = {
    {"add",    ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"sub",    ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"and",    ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"or",     ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"xor",    ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"sll",    ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"srl",    ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"sra",    ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"slt",    ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"sltu",   ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"mul",    ExecClass::IntComplex, false, false, false, false, false, false, false, false},
    {"mulh",   ExecClass::IntComplex, false, false, false, false, false, false, false, false},
    {"div",    ExecClass::IntComplex, false, false, false, false, false, false, false, false},
    {"rem",    ExecClass::IntComplex, false, false, false, false, false, false, false, false},
    {"addi",   ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"andi",   ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"ori",    ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"xori",   ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"slli",   ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"srli",   ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"srai",   ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"slti",   ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"sltui",  ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"lui",    ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
    {"ld",     ExecClass::Mem,        true,  false, false, false, false, false, false, false},
    {"st",     ExecClass::Mem,        false, true,  false, false, false, false, false, false},
    {"fld",    ExecClass::Mem,        true,  false, false, false, false, true,  false, false},
    {"fst",    ExecClass::Mem,        false, true,  false, false, false, false, false, true},
    {"beq",    ExecClass::Branch,     false, false, true,  true,  false, false, false, false},
    {"bne",    ExecClass::Branch,     false, false, true,  true,  false, false, false, false},
    {"blt",    ExecClass::Branch,     false, false, true,  true,  false, false, false, false},
    {"bge",    ExecClass::Branch,     false, false, true,  true,  false, false, false, false},
    {"bltu",   ExecClass::Branch,     false, false, true,  true,  false, false, false, false},
    {"bgeu",   ExecClass::Branch,     false, false, true,  true,  false, false, false, false},
    {"jal",    ExecClass::Branch,     false, false, true,  false, false, false, false, false},
    {"jalr",   ExecClass::Branch,     false, false, true,  false, true,  false, false, false},
    {"fadd",   ExecClass::FpSimple,   false, false, false, false, false, true,  true,  true},
    {"fsub",   ExecClass::FpSimple,   false, false, false, false, false, true,  true,  true},
    {"fmul",   ExecClass::FpComplex,  false, false, false, false, false, true,  true,  true},
    {"fdiv",   ExecClass::FpComplex,  false, false, false, false, false, true,  true,  true},
    {"fsqrt",  ExecClass::FpComplex,  false, false, false, false, false, true,  true,  false},
    {"fabs",   ExecClass::FpSimple,   false, false, false, false, false, true,  true,  false},
    {"fneg",   ExecClass::FpSimple,   false, false, false, false, false, true,  true,  false},
    {"fmov",   ExecClass::FpSimple,   false, false, false, false, false, true,  true,  false},
    {"fcvt.if", ExecClass::FpSimple,  false, false, false, false, false, true,  false, false},
    {"fcvt.fi", ExecClass::FpSimple,  false, false, false, false, false, false, true,  false},
    {"flt",    ExecClass::FpSimple,   false, false, false, false, false, false, true,  true},
    {"fle",    ExecClass::FpSimple,   false, false, false, false, false, false, true,  true},
    {"feq",    ExecClass::FpSimple,   false, false, false, false, false, false, true,  true},
    {"funord", ExecClass::FpSimple,   false, false, false, false, false, false, true,  true},
    {"nop",    ExecClass::IntSimple,  false, false, false, false, false, false, false, false},
};

static_assert(sizeof(kHopTable) / sizeof(kHopTable[0]) ==
              static_cast<size_t>(HOp::NumOps),
              "kHopTable must cover every HOp");

} // namespace detail

unsigned
execLatency(ExecClass cls)
{
    switch (cls) {
      case ExecClass::IntSimple:  return 1;
      case ExecClass::IntComplex: return 2;
      case ExecClass::FpSimple:   return 2;
      case ExecClass::FpComplex:  return 5;
      case ExecClass::Mem:        return 1;  // plus cache time
      case ExecClass::Branch:     return 1;
      default: panic("bad exec class");
    }
}

} // namespace darco::host
