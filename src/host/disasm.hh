/**
 * @file
 * HRISC disassembler: renders host instructions and whole translated
 * regions (with exit metadata) for debugging and for the region-dump
 * tooling. Understands the register conventions of the address map
 * (guest-bound registers print as their guest names).
 */

#ifndef DARCO_HOST_DISASM_HH
#define DARCO_HOST_DISASM_HH

#include <string>

#include "host/code_store.hh"
#include "host/isa.hh"

namespace darco::host {

/** Render one instruction (PC used for branch-target formatting). */
std::string disassemble(const HostInst &inst, uint32_t pc = 0);

/** Render a whole region: header, instructions, exits. */
std::string disassembleRegion(const CodeRegion &region);

/** Symbolic name of an integer register per the ABI conventions. */
std::string hostRegName(uint8_t reg);

} // namespace darco::host

#endif // DARCO_HOST_DISASM_HH
