#include "runner/snapshot_codec.hh"

#include <cstring>
#include <type_traits>

#include "common/logging.hh"
#include "trace/trace.hh"

namespace darco::runner::codec {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

void
appendHex(std::string &out, const uint8_t *data, size_t len)
{
    for (size_t i = 0; i < len; ++i) {
        out += kHexDigits[data[i] >> 4];
        out += kHexDigits[data[i] & 0xf];
    }
}

int
hexVal(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    return -1;
}

bool
decodeHex(const std::string &hex, uint8_t *out, size_t len)
{
    if (hex.size() != len * 2)
        return false;
    for (size_t i = 0; i < len; ++i) {
        const int hi = hexVal(hex[2 * i]);
        const int lo = hexVal(hex[2 * i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out[i] = static_cast<uint8_t>((hi << 4) | lo);
    }
    return true;
}

// PipeStats is all counters and fixed-size arrays; the codec
// round-trips it as raw bytes. Guarded so a future non-POD member
// breaks the build here instead of corrupting journals and caches.
static_assert(std::is_trivially_copyable_v<timing::PipeStats>,
              "snapshot codec serializes PipeStats as raw bytes");

std::string
pipeStatsHex(const timing::PipeStats &ps)
{
    std::string out;
    out.reserve(sizeof(ps) * 2);
    uint8_t bytes[sizeof(ps)];
    std::memcpy(bytes, &ps, sizeof(ps));
    appendHex(out, bytes, sizeof(ps));
    return out;
}

bool
pipeStatsFromHex(const std::string &hex, timing::PipeStats &ps)
{
    uint8_t bytes[sizeof(ps)];
    if (!decodeHex(hex, bytes, sizeof(ps)))
        return false;
    std::memcpy(&ps, bytes, sizeof(ps));
    return true;
}

size_t
findKey(const std::string &line, const char *key)
{
    const std::string pat = strprintf("\"%s\":", key);
    const size_t pos = line.find(pat);
    return pos == std::string::npos ? std::string::npos
                                    : pos + pat.size();
}

void
appendU64Hex(std::string &out, uint64_t v)
{
    for (int shift = 60; shift >= 0; shift -= 4)
        out += kHexDigits[(v >> shift) & 0xf];
}

std::optional<uint64_t>
takeU64Hex(const std::string &s, size_t &pos)
{
    if (pos + 16 > s.size())
        return std::nullopt;
    uint64_t v = 0;
    for (size_t i = 0; i < 16; ++i) {
        const int d = hexVal(s[pos + i]);
        if (d < 0)
            return std::nullopt;
        v = (v << 4) | static_cast<uint64_t>(d);
    }
    pos += 16;
    return v;
}

/**
 * RunProfile as a flat hex stream of u64 fields (maps are
 * length-prefixed; std::map iteration order is the sort order, so
 * serialization is canonical and two equal profiles serialize to the
 * same bytes).
 */
std::string
profileHex(const profile::RunProfile &p)
{
    std::string out;
    out.reserve((8 + 2 * p.dataReuse.counts.size() +
                 6 * p.branches.sites.size()) * 16);
    appendU64Hex(out, p.lineBytes);
    appendU64Hex(out, p.dataReuse.coldAccesses);
    appendU64Hex(out, p.dataReuse.counts.size());
    for (const auto &[dist, cnt] : p.dataReuse.counts) {
        appendU64Hex(out, dist);
        appendU64Hex(out, cnt);
    }
    appendU64Hex(out, p.branches.dynBranches);
    appendU64Hex(out, p.branches.dynCondBranches);
    appendU64Hex(out, p.branches.mispredicts);
    appendU64Hex(out, p.branches.sites.size());
    for (const auto &[pc, site] : p.branches.sites) {
        appendU64Hex(out, pc);
        appendU64Hex(out, site.taken);
        appendU64Hex(out, site.notTaken);
        appendU64Hex(out, site.transitions);
        appendU64Hex(out, site.mispredicts);
        appendU64Hex(out, (site.isCond ? 1u : 0u) |
                          (site.isIndirect ? 2u : 0u));
    }
    return out;
}

bool
profileFromHex(const std::string &hex, profile::RunProfile &p)
{
    size_t pos = 0;
    const auto take = [&]() { return takeU64Hex(hex, pos); };
    const auto line_bytes = take();
    const auto cold = take();
    const auto ncounts = take();
    if (!line_bytes || !cold || !ncounts)
        return false;
    p.lineBytes = static_cast<uint32_t>(*line_bytes);
    p.dataReuse.coldAccesses = *cold;
    for (uint64_t i = 0; i < *ncounts; ++i) {
        const auto dist = take();
        const auto cnt = take();
        if (!dist || !cnt)
            return false;
        p.dataReuse.counts[*dist] = *cnt;
    }
    const auto dyn = take();
    const auto dyn_cond = take();
    const auto mispred = take();
    const auto nsites = take();
    if (!dyn || !dyn_cond || !mispred || !nsites)
        return false;
    p.branches.dynBranches = *dyn;
    p.branches.dynCondBranches = *dyn_cond;
    p.branches.mispredicts = *mispred;
    for (uint64_t i = 0; i < *nsites; ++i) {
        const auto pc = take();
        const auto taken = take();
        const auto not_taken = take();
        const auto transitions = take();
        const auto site_mispred = take();
        const auto flags = take();
        if (!pc || !taken || !not_taken || !transitions ||
            !site_mispred || !flags) {
            return false;
        }
        profile::BranchSite site;
        site.taken = *taken;
        site.notTaken = *not_taken;
        site.transitions = *transitions;
        site.mispredicts = *site_mispred;
        site.isCond = (*flags & 1) != 0;
        site.isIndirect = (*flags & 2) != 0;
        p.branches.sites[static_cast<uint32_t>(*pc)] = site;
    }
    return pos == hex.size();
}

/** TolStats counters in serialization order (diffTolStats' set). */
struct TolField
{
    const char *key;
    uint64_t tol::TolStats::*member;
};

constexpr TolField kTolFields[] = {
    {"dynIm", &tol::TolStats::dynIm},
    {"dynBbm", &tol::TolStats::dynBbm},
    {"dynSbm", &tol::TolStats::dynSbm},
    {"bbsTranslated", &tol::TolStats::bbsTranslated},
    {"sbsCreated", &tol::TolStats::sbsCreated},
    {"guestInstsTranslatedBb", &tol::TolStats::guestInstsTranslatedBb},
    {"guestInstsTranslatedSb", &tol::TolStats::guestInstsTranslatedSb},
    {"hostInstsEmittedBb", &tol::TolStats::hostInstsEmittedBb},
    {"hostInstsEmittedSb", &tol::TolStats::hostInstsEmittedSb},
    {"dispatchLoops", &tol::TolStats::dispatchLoops},
    {"mapLookups", &tol::TolStats::mapLookups},
    {"mapHits", &tol::TolStats::mapHits},
    {"chainsPatched", &tol::TolStats::chainsPatched},
    {"entryForwards", &tol::TolStats::entryForwards},
    {"ibtcMisses", &tol::TolStats::ibtcMisses},
    {"ibtcFills", &tol::TolStats::ibtcFills},
    {"promotions", &tol::TolStats::promotions},
    {"codeCacheFlushes", &tol::TolStats::codeCacheFlushes},
    {"contextFills", &tol::TolStats::contextFills},
    {"contextSpills", &tol::TolStats::contextSpills},
    {"guestIndirectBranches", &tol::TolStats::guestIndirectBranches},
};

/** Static mode map as sorted (eip, mode) pairs, 10 hex chars each. */
std::string
staticModesHex(const tol::TolStats &ts)
{
    std::vector<std::pair<uint32_t, uint8_t>> pairs(
        ts.staticMode.begin(), ts.staticMode.end());
    std::sort(pairs.begin(), pairs.end());
    std::string out;
    out.reserve(pairs.size() * 10);
    for (const auto &[eip, mode] : pairs)
        out += strprintf("%08x%02x", eip, mode);
    return out;
}

bool
staticModesFromHex(const std::string &hex, tol::TolStats &ts)
{
    if (hex.size() % 10 != 0)
        return false;
    for (size_t i = 0; i < hex.size(); i += 10) {
        uint8_t bytes[5];
        if (!decodeHex(hex.substr(i, 10), bytes, 5))
            return false;
        const uint32_t eip = (uint32_t{bytes[0]} << 24) |
                             (uint32_t{bytes[1]} << 16) |
                             (uint32_t{bytes[2]} << 8) |
                             uint32_t{bytes[3]};
        ts.staticMode[eip] = bytes[4];
    }
    return true;
}

} // namespace

uint64_t
hashString(const std::string &s)
{
    return trace::fnv1a64(
        reinterpret_cast<const uint8_t *>(s.data()), s.size());
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '\\' || c == '"') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += strprintf("\\u%04x", c);
        } else {
            out += c;
        }
    }
    return out;
}

std::optional<uint64_t>
getU64(const std::string &line, const char *key)
{
    const size_t pos = findKey(line, key);
    if (pos == std::string::npos || pos >= line.size())
        return std::nullopt;
    if (line[pos] < '0' || line[pos] > '9')
        return std::nullopt;
    return std::strtoull(line.c_str() + pos, nullptr, 10);
}

std::optional<std::string>
getStr(const std::string &line, const char *key)
{
    size_t pos = findKey(line, key);
    if (pos == std::string::npos || pos >= line.size() ||
        line[pos] != '"') {
        return std::nullopt;
    }
    std::string out;
    for (++pos; pos < line.size(); ++pos) {
        const char c = line[pos];
        if (c == '"')
            return out;
        if (c != '\\') {
            out += c;
            continue;
        }
        if (++pos >= line.size())
            return std::nullopt;
        const char e = line[pos];
        if (e == '\\' || e == '"') {
            out += e;
        } else if (e == 'u' && pos + 4 < line.size()) {
            const int h1 = hexVal(line[pos + 3]);
            const int h2 = hexVal(line[pos + 4]);
            if (h1 < 0 || h2 < 0)
                return std::nullopt;
            out += static_cast<char>((h1 << 4) | h2);
            pos += 4;
        } else {
            return std::nullopt;
        }
    }
    return std::nullopt;  // unterminated string
}

std::optional<uint64_t>
getHex64(const std::string &line, const char *key)
{
    const std::optional<std::string> s = getStr(line, key);
    if (!s || s->size() != 16)
        return std::nullopt;
    uint64_t v = 0;
    for (const char c : *s) {
        const int d = hexVal(c);
        if (d < 0)
            return std::nullopt;
        v = (v << 4) | static_cast<uint64_t>(d);
    }
    return v;
}

void
appendSnapshotFields(std::string &body, const sim::RunSnapshot &snap)
{
    body += strprintf(
        ",\"guest_retired\":%llu,\"halted\":%u,\"cycles\":%llu,"
        "\"timing_core\":\"%s\"",
        static_cast<unsigned long long>(snap.result.guestRetired),
        snap.result.halted ? 1u : 0u,
        static_cast<unsigned long long>(snap.result.cycles),
        escape(snap.timingCore).c_str());
    body += ",\"stats\":\"" + pipeStatsHex(snap.stats) + "\"";
    if (snap.tolOnly)
        body += ",\"tol_only\":\"" + pipeStatsHex(*snap.tolOnly) + "\"";
    if (snap.appOnly)
        body += ",\"app_only\":\"" + pipeStatsHex(*snap.appOnly) + "\"";
    if (snap.tolModule) {
        body += ",\"tol_module\":\"" + pipeStatsHex(*snap.tolModule) +
                "\"";
    }
    if (snap.profile)
        body += ",\"profile\":\"" + profileHex(*snap.profile) + "\"";
    for (const TolField &f : kTolFields) {
        body += strprintf(
            ",\"%s\":%llu", f.key,
            static_cast<unsigned long long>(snap.tolStats.*f.member));
    }
    body += ",\"static_modes\":\"" + staticModesHex(snap.tolStats) +
            "\"";
}

bool
parseSnapshotFields(const std::string &line, sim::RunSnapshot &snap)
{
    const auto retired = getU64(line, "guest_retired");
    const auto halted = getU64(line, "halted");
    const auto cycles = getU64(line, "cycles");
    const auto core = getStr(line, "timing_core");
    const auto stats = getStr(line, "stats");
    const auto statics = getStr(line, "static_modes");
    if (!retired || !halted || !cycles || !core || !stats || !statics)
        return false;
    snap.result.guestRetired = *retired;
    snap.result.halted = *halted != 0;
    snap.result.cycles = *cycles;
    snap.timingCore = *core;
    if (!pipeStatsFromHex(*stats, snap.stats))
        return false;
    const auto blob = [&](const char *key,
                          std::optional<timing::PipeStats> &dst) {
        const auto hex = getStr(line, key);
        if (!hex)
            return true;  // absent is fine
        timing::PipeStats ps;
        if (!pipeStatsFromHex(*hex, ps))
            return false;
        dst = ps;
        return true;
    };
    if (!blob("tol_only", snap.tolOnly) ||
        !blob("app_only", snap.appOnly) ||
        !blob("tol_module", snap.tolModule)) {
        return false;
    }
    if (const auto prof_hex = getStr(line, "profile")) {
        profile::RunProfile rp;
        if (!profileFromHex(*prof_hex, rp))
            return false;
        snap.profile = std::move(rp);
    }
    for (const TolField &f : kTolFields) {
        const auto v = getU64(line, f.key);
        if (!v)
            return false;
        snap.tolStats.*f.member = *v;
    }
    return staticModesFromHex(*statics, snap.tolStats);
}

std::string
sealLine(const std::string &body)
{
    return body + strprintf(",\"csum\":\"%016llx\"}",
                            static_cast<unsigned long long>(
                                hashString(body)));
}

std::optional<std::string>
checksummedBody(const std::string &line)
{
    // Authenticate before parsing: the checksum covers every byte of
    // the body, so a torn or bit-damaged line cannot half-parse.
    const size_t csum_at = line.rfind(",\"csum\":\"");
    if (csum_at == std::string::npos)
        return std::nullopt;
    const std::string tail = line.substr(csum_at);
    const std::optional<uint64_t> csum = getHex64(tail, "csum");
    if (!csum || *csum != hashString(line.substr(0, csum_at)))
        return std::nullopt;
    return line.substr(0, csum_at);
}

} // namespace darco::runner::codec
