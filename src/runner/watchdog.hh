/**
 * @file
 * Per-job wall-clock watchdog for campaign execution.
 *
 * One monitor thread serves every worker: workers arm a deadline
 * before starting a job and disarm it when the job finishes; when a
 * deadline passes, the monitor requests the job's CancelToken and the
 * run stops cooperatively at the next batch boundary (see
 * common/cancel.hh for why this leaves exact partial metrics). The
 * hot simulation path is untouched — the only cross-thread traffic
 * is the token's relaxed flag, and arming/disarming costs one mutex
 * acquisition per *job*, not per instruction.
 *
 * Firing is one-way: the watchdog only ever sets the token. The
 * worker that owns the job decides what a fired deadline means
 * (runner::BatchRunner reports it as RunErrorClass::Timeout with the
 * partial metrics attached).
 */

#ifndef DARCO_RUNNER_WATCHDOG_HH
#define DARCO_RUNNER_WATCHDOG_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancel.hh"

namespace darco::runner {

class Watchdog
{
  public:
    Watchdog();
    /** Joins the monitor thread; every entry must be disarmed. */
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /**
     * Start watching @p token: request it @p timeout_ms from now
     * unless disarm() is called first. Returns a ticket for
     * disarm(). @p token must outlive the armed window.
     */
    uint64_t arm(common::CancelToken *token, uint64_t timeout_ms);

    /**
     * Stop watching the entry behind @p ticket. Safe to call after
     * the deadline fired (the entry is simply gone); returns whether
     * the deadline had already fired.
     */
    bool disarm(uint64_t ticket);

  private:
    void monitorLoop();

    struct Entry
    {
        uint64_t ticket;
        common::CancelToken *token;
        std::chrono::steady_clock::time_point deadline;
    };

    std::mutex mu;
    std::condition_variable cv;
    std::vector<Entry> entries;
    uint64_t nextTicket = 1;
    bool shuttingDown = false;
    std::thread monitor;
};

/**
 * RAII arming for one job: arms on construction (when a watchdog and
 * a timeout are present), disarms on destruction, and remembers
 * whether the deadline fired before the job finished.
 */
class WatchdogArm
{
  public:
    WatchdogArm(Watchdog *dog, common::CancelToken *token,
                uint64_t timeout_ms)
        : dog(dog && timeout_ms ? dog : nullptr)
    {
        if (this->dog)
            ticket = this->dog->arm(token, timeout_ms);
    }

    ~WatchdogArm()
    {
        if (dog)
            firedFlag = dog->disarm(ticket);
        dog = nullptr;
    }

    /** Disarm now and report whether the deadline fired. */
    bool
    fired()
    {
        if (dog) {
            firedFlag = dog->disarm(ticket);
            dog = nullptr;
        }
        return firedFlag;
    }

  private:
    Watchdog *dog = nullptr;
    uint64_t ticket = 0;
    bool firedFlag = false;
};

} // namespace darco::runner

#endif // DARCO_RUNNER_WATCHDOG_HH
