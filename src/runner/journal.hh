/**
 * @file
 * Crash-resumable campaign journal (docs/robustness.md §4).
 *
 * A campaign that sweeps hundreds of (workload, config) cells can
 * die halfway — OOM kill, machine reboot, ctrl-C. The journal makes
 * the completed work durable: BatchRunner appends one checksummed
 * JSONL record per *successful* job, flushed before the next job's
 * result can land, and a resumed campaign replays those records
 * instead of re-running the jobs. Because every figure metric is a
 * pure function of the RunSnapshot (sim::collectMetrics), a replayed
 * job is bit-identical to the run that produced it — enforced by the
 * kill-and-resume gate in tests/test_fault_tolerance.cc.
 *
 * A journal entry is only trusted for a job that asks for exactly
 * the same experiment: entries are keyed on (job index, workload
 * string, config fingerprint, engine version). The fingerprint
 * hashes a canonical dump of every effective MetricsOptions field
 * that feeds the simulation (post capture-recipe, post per-job
 * overrides) — runtime wiring like the cancel token is excluded, a
 * changed threshold or cache geometry changes the key. Jobs with
 * side effects beyond their metrics (trace capture) are never
 * journaled: a resume must regenerate the capture file.
 *
 * The format tolerates exactly the damage a SIGKILL can cause: a
 * torn final line (no trailing newline, truncated mid-record) is
 * skipped, as is any line whose FNV-1a checksum does not match its
 * body. Anything else present but unparseable is skipped and
 * counted, never fatal — a damaged journal costs re-runs, not the
 * campaign.
 */

#ifndef DARCO_RUNNER_JOURNAL_HH
#define DARCO_RUNNER_JOURNAL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/metrics.hh"

namespace darco::runner {

/**
 * Engine version pin: journal entries from a different engine
 * version are ignored on resume. Bump whenever a change could alter
 * any measured quantity (same discipline as the perf baselines).
 */
constexpr const char *kJournalEngineVersion = "darco-engine-4";

/** One completed job, as recorded in / loaded from a journal. */
struct JournalEntry
{
    uint64_t jobIndex = 0;
    /** The BatchJob workload string, exactly as submitted. */
    std::string workload;
    /** configFingerprint() of the job's effective options. */
    uint64_t fingerprint = 0;

    std::string name;
    std::string suite;
    std::string uri;
    sim::RunSnapshot snapshot;
};

/**
 * Hash the effective experiment definition: every MetricsOptions
 * field that influences the simulation (tolConfig, timingConfig,
 * guest budget, pipeline instance flags) plus the workload string
 * and the harness's halt requirement. Canonical field-by-field text
 * dump under the hood — never raw struct bytes, whose padding is
 * indeterminate.
 */
uint64_t configFingerprint(const sim::MetricsOptions &effective,
                           const std::string &workload,
                           bool requireHalt);

/** Append-side handle; one per campaign, writes serialized by the
 *  caller (BatchRunner appends under its completion mutex). */
class Journal
{
  public:
    /** Open @p path for append, writing the header line first when
     *  the file is new or empty. fatal() (ErrKind::Io) on failure. */
    explicit Journal(const std::string &path);
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Append one completed job and flush it to the OS. After this
     * returns, the entry survives a SIGKILL of this process (kernel
     * buffers outlive the process; only a host crash can lose it).
     */
    void append(const JournalEntry &entry);

  private:
    FILE *file = nullptr;
    std::string path;
};

/** Everything salvaged from an existing journal file. */
struct JournalLoad
{
    std::vector<JournalEntry> entries;
    /** Engine version string from the header ("" = no header). */
    std::string engine;
    /** Torn/corrupt/unparseable lines skipped (not an error). */
    size_t skippedLines = 0;
};

/**
 * Load every intact entry from @p path. A missing file is an empty
 * load (resuming a campaign that never started is a no-op), damaged
 * lines are counted in skippedLines.
 */
JournalLoad loadJournal(const std::string &path);

} // namespace darco::runner

#endif // DARCO_RUNNER_JOURNAL_HH
