#include "runner/watchdog.hh"

#include <algorithm>

#include "common/logging.hh"

namespace darco::runner {

Watchdog::Watchdog() : monitor([this] { monitorLoop(); }) {}

Watchdog::~Watchdog()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        panic_if(!entries.empty(),
                 "Watchdog destroyed with %zu armed entries",
                 entries.size());
        shuttingDown = true;
    }
    cv.notify_all();
    monitor.join();
}

uint64_t
Watchdog::arm(common::CancelToken *token, uint64_t timeout_ms)
{
    panic_if(!token, "Watchdog::arm without a cancel token");
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    uint64_t ticket;
    {
        std::lock_guard<std::mutex> lock(mu);
        ticket = nextTicket++;
        entries.push_back({ticket, token, deadline});
    }
    // The new deadline may be earlier than whatever the monitor is
    // currently sleeping towards.
    cv.notify_all();
    return ticket;
}

bool
Watchdog::disarm(uint64_t ticket)
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = std::find_if(
        entries.begin(), entries.end(),
        [ticket](const Entry &e) { return e.ticket == ticket; });
    if (it == entries.end())
        return true;  // already fired and removed by the monitor
    entries.erase(it);
    return false;
}

void
Watchdog::monitorLoop()
{
    std::unique_lock<std::mutex> lock(mu);
    while (!shuttingDown) {
        if (entries.empty()) {
            cv.wait(lock);
            continue;
        }
        const auto next = std::min_element(
            entries.begin(), entries.end(),
            [](const Entry &a, const Entry &b) {
                return a.deadline < b.deadline;
            })->deadline;
        cv.wait_until(lock, next);
        // Fire (and drop) every entry whose deadline has passed;
        // notifies and spurious wakeups just re-evaluate.
        const auto now = std::chrono::steady_clock::now();
        std::erase_if(entries, [now](const Entry &e) {
            if (e.deadline > now)
                return false;
            e.token->request();
            return true;
        });
    }
}

} // namespace darco::runner
