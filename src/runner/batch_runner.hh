/**
 * @file
 * Deterministic multi-worker batch execution of independent
 * simulations, with fault-tolerant campaign semantics.
 *
 * The paper's characterization campaign is batch-shaped: every
 * figure is a sweep of 48 benchmarks x configurations, and each
 * (workload, config) cell is an independent, deterministic
 * simulation. `BatchRunner` executes such a batch on a fixed-size
 * worker pool, one `sim::System` per job, one job per thread at a
 * time — the "one System per thread, no sharing" contract of
 * docs/concurrency.md.
 *
 * Determinism: each job's metrics depend only on its (workload,
 * options) pair, never on scheduling, and results land in slots
 * ordered by job index — so a batch's output is bit-identical
 * whether it ran on 1 worker or 64, in whatever interleaving. The
 * equivalence is enforced by tests/test_batch_runner.cc, which A/Bs
 * parallel against serial sweeps with timing::diffStats /
 * tol::diffTolStats.
 *
 * Fault tolerance (docs/robustness.md): a job that fails reports a
 * classified sim::RunError in its slot; it never aborts the batch.
 * fatal() inside a job is converted via the ScopedFatalThrow seam
 * and classified by its ErrKind; panic() still aborts the process,
 * because an invariant violation poisons every number the process
 * could still report. On top of classification the runner offers
 *   - a per-job wall-clock watchdog (timeoutMs) that cancels a stuck
 *     run cooperatively and reports Timeout with partial metrics,
 *   - bounded-exponential-backoff re-runs of transiently failed jobs
 *     (retries/backoffBaseMs) — each attempt from scratch, so a
 *     retried success is bit-identical to a first-try success,
 *   - a crash-resumable campaign journal (journalPath): completed
 *     jobs are appended durably and skipped when the same campaign
 *     runs again over the same journal (runner/journal.hh).
 *
 * Scale-out (docs/campaigns.md): on top of the fault tolerance the
 * runner offers
 *   - a content-addressed result cache (cacheDir): before simulating,
 *     each job is looked up by (workload URI, config fingerprint,
 *     engine version) and a valid entry satisfies the job without
 *     running it — a warm re-run of an identical campaign performs
 *     zero simulations. Capture and isolation-pipe jobs always
 *     bypass the cache. Opt-in verify-hits re-simulates a
 *     deterministic fraction of hits and hard-fails the job unless
 *     the cached snapshot is bit-identical to the fresh run,
 *   - deterministic sharding (shard): shard K of N executes exactly
 *     the jobs whose batch index i satisfies i % N == K, so N
 *     independent processes sharing a cache directory cover a
 *     campaign exactly once. Out-of-shard slots are marked skipped
 *     and never executed,
 *   - intra-batch dedup: jobs with identical effective config
 *     fingerprints simulate once; the leader's snapshot fans out to
 *     every duplicate slot with per-slot pin checks re-applied, so
 *     the batch output stays bit-identical to a serial run.
 */

#ifndef DARCO_RUNNER_BATCH_RUNNER_HH
#define DARCO_RUNNER_BATCH_RUNNER_HH

#include <algorithm>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "sim/run_error.hh"
#include "trace/trace.hh"

namespace darco::runner {

/** One independent simulation in a batch. */
struct BatchJob
{
    /** Workload URI (any registered scheme) or bare synthetic name. */
    std::string workload;
    /** Per-job run configuration; a trace workload's capture recipe
     *  is re-applied on top (sim::applyCaptureRecipe), exactly as
     *  the serial sweep path does. */
    sim::MetricsOptions options;
    /**
     * Optional externally pinned determinism expectations: when set,
     * the finished run must reproduce these fields exactly or the
     * job fails (structured, batch continues). Pins a trace workload
     * carries in-file are checked independently of this field.
     */
    std::optional<trace::TracePins> expectedPins;
    /** Verify in-file capture pins of trace workloads (default on). */
    bool checkCapturedPins = true;
    /**
     * Explicit user overrides applied AFTER the capture recipe,
     * mirroring run_benchmark's single-workload semantics: the
     * recipe supplies defaults, the command line wins. An override
     * that changes the functional execution invalidates a trace's
     * in-file pins — set checkCapturedPins = false alongside.
     */
    std::optional<uint64_t> guestBudgetOverride;
    std::optional<uint32_t> sbThresholdOverride;
    /**
     * Require the guest to reach HALT within the budget: a run that
     * merely exhausts the budget fails with BudgetExhausted
     * (permanent — a bigger budget is a different experiment, not a
     * retry). Off by default: budget-bounded sweeps are the normal
     * campaign shape.
     */
    bool requireHalt = false;
};

/** How the result cache participated in one job. */
enum class CacheStatus : uint8_t
{
    /** No cache configured, or slot not executed (skipped/deduped). */
    None,
    /** Satisfied from the cache without simulating. */
    Hit,
    /** Looked up, absent or invalid; simulated and stored. */
    Miss,
    /** Capture/isolation job: never looked up, never stored. */
    Bypass,
};

/** Outcome slot for one job, at the job's index in the batch. */
struct JobResult
{
    bool ok = false;
    /** Failure description when !ok (runError.describe(), or the raw
     *  pin-mismatch/fatal text); empty on success. */
    std::string error;
    /** Classified failure (cls == None on success). */
    sim::RunError runError;

    /** Resolved workload identity (empty if resolution failed). */
    std::string name;
    std::string suite;
    std::string uri;

    /** Raw result + full stats snapshots (the bit-identity currency:
     *  compare with timing::diffStats / tol::diffTolStats). A
     *  Timeout failure still carries the partial-run snapshot. */
    sim::RunSnapshot snapshot;
    /** Derived figure metrics, identical to sim::runWorkload's. */
    sim::BenchMetrics metrics;

    /** Execution attempts made (1 = no retry; 0 = journal replay). */
    unsigned attempts = 0;
    /** Total backoff slept before the final attempt. */
    uint64_t backoffMsApplied = 0;
    /** Wall-clock spent executing this job (all attempts; reporting
     *  only — never feeds any measured quantity). */
    uint64_t durationMs = 0;
    /** Satisfied from the campaign journal without running. */
    bool fromJournal = false;
    /** journal::configFingerprint of the effective options (0 if the
     *  job failed before resolution). */
    uint64_t fingerprint = 0;

    /** Result cache participation (docs/campaigns.md). */
    CacheStatus cacheStatus = CacheStatus::None;
    /** Cache hit that was re-simulated by verify-hits mode and
     *  proven bit-identical. */
    bool verifiedHit = false;
    /** Satisfied by fanning out a dedup leader's snapshot (attempts
     *  == 0; per-slot pins were still checked). */
    bool deduped = false;
    /** Slot not in this runner's shard: never executed, every other
     *  field is default. Consumers must not treat it as a failure. */
    bool skipped = false;
};

/**
 * Deterministic bounded exponential backoff: base << attempt,
 * saturating at base * 64. No randomized jitter — jobs in one
 * campaign retry independent inputs, there is no shared resource to
 * avoid stampeding, and a deterministic schedule keeps campaign
 * wall-clock reproducible enough to reason about.
 */
inline uint64_t
backoffDelayMs(uint64_t base_ms, unsigned attempt)
{
    return base_ms << std::min(attempt, 6u);
}

/**
 * Deterministic campaign partition: this runner executes exactly the
 * jobs whose batch index i satisfies i % count == index. The
 * partition is a pure function of the job order, so N runners given
 * the same batch cover it exactly once with no coordination beyond
 * agreeing on (index, count).
 */
struct ShardSpec
{
    unsigned index = 0;
    unsigned count = 1;
};

struct BatchConfig
{
    /** Worker threads; 0 = std::thread::hardware_concurrency().
     *  Effective pool size is capped at the job count; 1 executes
     *  inline on the calling thread (the serial reference path). */
    unsigned workers = 0;
    /**
     * Invoked after each job completes, serialized under an internal
     * mutex (safe to print from). Jobs COMPLETE in scheduling order,
     * which is nondeterministic for workers > 1 — only the returned
     * slot order is deterministic. Journal-replayed jobs report
     * before any worker starts.
     */
    std::function<void(size_t index, const JobResult &result)> onJobDone;

    /**
     * Per-job wall-clock deadline in milliseconds; 0 disables the
     * watchdog. A job past its deadline is cancelled cooperatively
     * at the next record-batch boundary and fails with Timeout,
     * partial metrics attached (common/cancel.hh). Overrides any
     * options.cancel the job supplied. Must be 0 for perf-baseline
     * runs (bench/check_perf.py).
     */
    uint64_t timeoutMs = 0;
    /** Extra from-scratch attempts for jobs whose RunError is
     *  transient (Timeout, IoTransient); permanent failures are
     *  never retried. 0 disables retry. */
    unsigned retries = 0;
    /** First retry backoff; doubles per attempt (backoffDelayMs). */
    uint64_t backoffBaseMs = 100;
    /**
     * Campaign journal path; "" disables journaling. When set,
     * completed jobs are appended durably, and jobs already present
     * (matched on job index + workload + config fingerprint + engine
     * version, pins re-verified) are replayed instead of re-run —
     * with results bit-identical to an uninterrupted campaign.
     * Trace-capturing jobs are exempt: they always re-run so the
     * capture file is regenerated.
     */
    std::string journalPath;

    /** Shard of the batch this runner executes (default: all). */
    ShardSpec shard;
    /**
     * Result cache directory; "" disables the cache. When set,
     * non-bypass jobs are looked up by (workload URI, config
     * fingerprint, engine version) before simulating, and successful
     * simulations are published back via atomic rename
     * (runner/result_cache.hh). Must be "" for perf-baseline runs
     * (bench/check_perf.py).
     */
    std::string cacheDir;
    /**
     * Fraction of cache hits to re-simulate and compare bit-for-bit
     * against the cached snapshot (0 = trust the cache, 1 = verify
     * every hit). Selection is a deterministic function of the job's
     * config fingerprint — no RNG — so the same hits are audited on
     * every run. A divergent hit fails the job (Internal, never
     * retried): either the cache or the engine broke determinism,
     * and both poison the campaign.
     */
    double verifyHitFraction = 0.0;
};

class BatchRunner
{
  public:
    explicit BatchRunner(BatchConfig config = {});

    /** Number of workers a batch of @p jobCount jobs would use. */
    unsigned effectiveWorkers(size_t jobCount) const;

    /**
     * Execute every job and return results indexed like @p jobs.
     * Jobs are dispatched FIFO (no stealing): a shared atomic cursor
     * hands each worker the lowest unclaimed index. fatal() if two
     * jobs capture to the same trace path (they would race on the
     * file); individual job failures are reported in their slots.
     */
    std::vector<JobResult> run(const std::vector<BatchJob> &jobs) const;

  private:
    BatchConfig cfg;
};

} // namespace darco::runner

#endif // DARCO_RUNNER_BATCH_RUNNER_HH
