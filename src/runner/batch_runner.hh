/**
 * @file
 * Deterministic multi-worker batch execution of independent
 * simulations.
 *
 * The paper's characterization campaign is batch-shaped: every
 * figure is a sweep of 48 benchmarks x configurations, and each
 * (workload, config) cell is an independent, deterministic
 * simulation. `BatchRunner` executes such a batch on a fixed-size
 * worker pool, one `sim::System` per job, one job per thread at a
 * time — the "one System per thread, no sharing" contract of
 * docs/concurrency.md.
 *
 * Determinism: each job's metrics depend only on its (workload,
 * options) pair, never on scheduling, and results land in slots
 * ordered by job index — so a batch's output is bit-identical
 * whether it ran on 1 worker or 64, in whatever interleaving. The
 * equivalence is enforced by tests/test_batch_runner.cc, which A/Bs
 * parallel against serial sweeps with timing::diffStats /
 * tol::diffTolStats.
 *
 * Failure isolation: a job that fails (unknown URI, unreadable
 * trace, determinism-pin mismatch) reports through its JobResult;
 * it never aborts the batch. fatal() inside a job is converted to a
 * structured failure via the ScopedFatalThrow seam; panic() still
 * aborts the process, because an invariant violation poisons every
 * number the process could still report.
 */

#ifndef DARCO_RUNNER_BATCH_RUNNER_HH
#define DARCO_RUNNER_BATCH_RUNNER_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "trace/trace.hh"

namespace darco::runner {

/** One independent simulation in a batch. */
struct BatchJob
{
    /** Workload URI (any registered scheme) or bare synthetic name. */
    std::string workload;
    /** Per-job run configuration; a trace workload's capture recipe
     *  is re-applied on top (sim::applyCaptureRecipe), exactly as
     *  the serial sweep path does. */
    sim::MetricsOptions options;
    /**
     * Optional externally pinned determinism expectations: when set,
     * the finished run must reproduce these fields exactly or the
     * job fails (structured, batch continues). Pins a trace workload
     * carries in-file are checked independently of this field.
     */
    std::optional<trace::TracePins> expectedPins;
    /** Verify in-file capture pins of trace workloads (default on). */
    bool checkCapturedPins = true;
    /**
     * Explicit user overrides applied AFTER the capture recipe,
     * mirroring run_benchmark's single-workload semantics: the
     * recipe supplies defaults, the command line wins. An override
     * that changes the functional execution invalidates a trace's
     * in-file pins — set checkCapturedPins = false alongside.
     */
    std::optional<uint64_t> guestBudgetOverride;
    std::optional<uint32_t> sbThresholdOverride;
};

/** Outcome slot for one job, at the job's index in the batch. */
struct JobResult
{
    bool ok = false;
    /** Failure description when !ok (fatal message incl. site, or a
     *  pin-mismatch report); empty on success. */
    std::string error;

    /** Resolved workload identity (empty if resolution failed). */
    std::string name;
    std::string suite;
    std::string uri;

    /** Raw result + full stats snapshots (the bit-identity currency:
     *  compare with timing::diffStats / tol::diffTolStats). */
    sim::RunSnapshot snapshot;
    /** Derived figure metrics, identical to sim::runWorkload's. */
    sim::BenchMetrics metrics;
};

struct BatchConfig
{
    /** Worker threads; 0 = std::thread::hardware_concurrency().
     *  Effective pool size is capped at the job count; 1 executes
     *  inline on the calling thread (the serial reference path). */
    unsigned workers = 0;
    /**
     * Invoked after each job completes, serialized under an internal
     * mutex (safe to print from). Jobs COMPLETE in scheduling order,
     * which is nondeterministic for workers > 1 — only the returned
     * slot order is deterministic.
     */
    std::function<void(size_t index, const JobResult &result)> onJobDone;
};

class BatchRunner
{
  public:
    explicit BatchRunner(BatchConfig config = {});

    /** Number of workers a batch of @p jobCount jobs would use. */
    unsigned effectiveWorkers(size_t jobCount) const;

    /**
     * Execute every job and return results indexed like @p jobs.
     * Jobs are dispatched FIFO (no stealing): a shared atomic cursor
     * hands each worker the lowest unclaimed index. fatal() if two
     * jobs capture to the same trace path (they would race on the
     * file); individual job failures are reported in their slots.
     */
    std::vector<JobResult> run(const std::vector<BatchJob> &jobs) const;

  private:
    BatchConfig cfg;
};

} // namespace darco::runner

#endif // DARCO_RUNNER_BATCH_RUNNER_HH
