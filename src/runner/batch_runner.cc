#include "runner/batch_runner.hh"

#include <atomic>
#include <mutex>
#include <set>
#include <thread>

#include "common/logging.hh"
#include "sim/system.hh"
#include "workloads/source.hh"

namespace darco::runner {

namespace {

/** Append a pin-mismatch line for every field that diverged. */
void
diffPins(const char *label, const trace::TracePins &pins,
         const JobResult &r, std::string &error)
{
    const tol::TolStats &ts = r.snapshot.tolStats;
    auto check = [&](const char *what, uint64_t got, uint64_t want) {
        if (got != want) {
            error += strprintf(
                "%s pin mismatch: %s %llu != pinned %llu\n", label,
                what, static_cast<unsigned long long>(got),
                static_cast<unsigned long long>(want));
        }
    };
    check("guest_retired", r.snapshot.result.guestRetired,
          pins.guestRetired);
    check("sim_cycles", r.snapshot.result.cycles, pins.simCycles);
    check("host_records", r.snapshot.stats.records, pins.hostRecords);
    // timing_core is a determinism field too (check_perf.py): a
    // replay that advanced time on a different core than the
    // capture is not the same experiment, even if the counters
    // happen to agree.
    if (!pins.timingCore.empty() &&
        r.snapshot.timingCore != pins.timingCore) {
        error += strprintf(
            "%s pin mismatch: timing_core %s != pinned %s\n", label,
            r.snapshot.timingCore.c_str(), pins.timingCore.c_str());
    }
    check("dyn_im", ts.dynIm, pins.dynIm);
    check("dyn_bbm", ts.dynBbm, pins.dynBbm);
    check("dyn_sbm", ts.dynSbm, pins.dynSbm);
    check("bbs_translated", ts.bbsTranslated, pins.bbsTranslated);
    check("sbs_created", ts.sbsCreated, pins.sbsCreated);
    check("guest_indirect_branches", ts.guestIndirectBranches,
          pins.guestIndirectBranches);
}

/**
 * Run one job start to finish on the calling thread. Everything a
 * job touches is job-local (its own System, memories, pipelines);
 * the only shared services are the workload registry and the logging
 * switches, both thread-safe (docs/concurrency.md).
 */
JobResult
executeJob(const BatchJob &job)
{
    JobResult r;
    // Identity up front, so a job that fails before (or during)
    // resolution still reports which workload it was.
    r.uri = job.workload;
    // fatal() anywhere below (unknown scheme, unreadable trace, bad
    // config) becomes a FatalError we turn into a structured failure.
    ScopedFatalThrow fatal_throws;
    try {
        const workloads::Workload workload =
            workloads::resolveWorkload(job.workload);
        r.name = workload.name;
        r.suite = workload.suite;
        r.uri = workload.uri;

        // Same per-job wiring as the serial sweep reference path
        // (bench_util::runSweep with --jobs 1): recipe, then
        // explicit per-job overrides, then the one shared
        // MetricsOptions -> SimConfig translation.
        sim::MetricsOptions options = job.options;
        sim::applyCaptureRecipe(options, workload);
        if (job.guestBudgetOverride)
            options.guestBudget = *job.guestBudgetOverride;
        if (job.sbThresholdOverride) {
            options.tolConfig.bbToSbThreshold =
                *job.sbThresholdOverride;
        }
        const sim::SimConfig cfg = sim::configFromOptions(options);

        sim::System sys(cfg);
        sys.load(workload);
        r.snapshot.result = sys.run();
        r.snapshot.stats = sys.combinedStats();
        r.snapshot.tolStats = sys.tolStats();
        r.snapshot.timingCore =
            sys.timingEngine() ==
                    timing::Pipeline::Engine::EventDriven
                ? "event" : "reference";
        r.metrics = sim::collectMetrics(sys, r.snapshot.result,
                                        workload.name, workload.suite);

        if (job.checkCapturedPins && workload.capturedPins)
            diffPins("capture", *workload.capturedPins, r, r.error);
        if (job.expectedPins)
            diffPins("expected", *job.expectedPins, r, r.error);
        r.ok = r.error.empty();
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
    }
    return r;
}

} // namespace

BatchRunner::BatchRunner(BatchConfig config) : cfg(std::move(config)) {}

unsigned
BatchRunner::effectiveWorkers(size_t jobCount) const
{
    unsigned workers = cfg.workers;
    if (workers == 0)
        workers = std::thread::hardware_concurrency();
    if (workers == 0)
        workers = 1;
    if (jobCount < workers)
        workers = static_cast<unsigned>(jobCount);
    return workers;
}

std::vector<JobResult>
BatchRunner::run(const std::vector<BatchJob> &jobs) const
{
    // Two jobs capturing to one path would interleave writes into the
    // same trace file; that is a batch-construction error, caught
    // before any work starts.
    std::set<std::string> capture_paths;
    for (const BatchJob &job : jobs) {
        if (job.options.captureTracePath.empty())
            continue;
        fatal_if(!capture_paths.insert(job.options.captureTracePath)
                      .second,
                 "batch runner: two jobs capture to '%s'",
                 job.options.captureTracePath.c_str());
    }

    std::vector<JobResult> results(jobs.size());
    const unsigned workers = effectiveWorkers(jobs.size());

    // FIFO dispatch, no stealing: the cursor hands each worker the
    // lowest unclaimed job index; each worker writes only its own
    // result slots, so the vector needs no lock.
    std::atomic<size_t> cursor{0};
    std::mutex done_mutex;
    auto drain = [&] {
        for (;;) {
            const size_t index =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (index >= jobs.size())
                return;
            results[index] = executeJob(jobs[index]);
            if (cfg.onJobDone) {
                std::lock_guard<std::mutex> lock(done_mutex);
                cfg.onJobDone(index, results[index]);
            }
        }
    };

    if (workers <= 1) {
        // Serial reference path: same executeJob, calling thread.
        drain();
        return results;
    }
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(drain);
    for (std::thread &t : pool)
        t.join();
    return results;
}

} // namespace darco::runner
