#include "runner/batch_runner.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>

#include "common/logging.hh"
#include "profile/profile.hh"
#include "runner/journal.hh"
#include "runner/result_cache.hh"
#include "runner/watchdog.hh"
#include "sim/system.hh"
#include "timing/pipeline.hh"
#include "tol/stats.hh"
#include "workloads/source.hh"

namespace darco::runner {

namespace {

/** Append a pin-mismatch line for every field that diverged. */
void
diffPins(const char *label, const trace::TracePins &pins,
         const JobResult &r, std::string &error)
{
    const tol::TolStats &ts = r.snapshot.tolStats;
    auto check = [&](const char *what, uint64_t got, uint64_t want) {
        if (got != want) {
            error += strprintf(
                "%s pin mismatch: %s %llu != pinned %llu\n", label,
                what, static_cast<unsigned long long>(got),
                static_cast<unsigned long long>(want));
        }
    };
    check("guest_retired", r.snapshot.result.guestRetired,
          pins.guestRetired);
    check("sim_cycles", r.snapshot.result.cycles, pins.simCycles);
    check("host_records", r.snapshot.stats.records, pins.hostRecords);
    // timing_core is a determinism field too (check_perf.py): a
    // replay that advanced time on a different core than the
    // capture is not the same experiment, even if the counters
    // happen to agree.
    if (!pins.timingCore.empty() &&
        r.snapshot.timingCore != pins.timingCore) {
        error += strprintf(
            "%s pin mismatch: timing_core %s != pinned %s\n", label,
            r.snapshot.timingCore.c_str(), pins.timingCore.c_str());
    }
    check("dyn_im", ts.dynIm, pins.dynIm);
    check("dyn_bbm", ts.dynBbm, pins.dynBbm);
    check("dyn_sbm", ts.dynSbm, pins.dynSbm);
    check("bbs_translated", ts.bbsTranslated, pins.bbsTranslated);
    check("sbs_created", ts.sbsCreated, pins.sbsCreated);
    check("guest_indirect_branches", ts.guestIndirectBranches,
          pins.guestIndirectBranches);
}

/** Per-batch execution services shared by every worker. */
struct ExecContext
{
    Watchdog *watchdog = nullptr;
    uint64_t timeoutMs = 0;
};

/**
 * A job's resolved identity and effective configuration — the part
 * of execution that defines the experiment without running it.
 * Shared by the execute path, journal replay, cache lookup and the
 * dedup pre-pass so all four agree on what "the same job" means.
 */
struct PreparedJob
{
    workloads::Workload workload;
    sim::MetricsOptions options;
    uint64_t fingerprint = 0;
};

/**
 * Resolve the workload and build the effective options: recipe, then
 * explicit per-job overrides, mirroring run_benchmark's
 * single-workload semantics (the recipe supplies defaults, the
 * command line wins). May fatal-throw (unknown scheme, unreadable
 * trace) — callers hold a ScopedFatalThrow.
 */
PreparedJob
prepareJob(const BatchJob &job)
{
    PreparedJob p;
    p.workload = workloads::resolveWorkload(job.workload);
    p.options = job.options;
    sim::applyCaptureRecipe(p.options, p.workload);
    if (job.guestBudgetOverride)
        p.options.guestBudget = *job.guestBudgetOverride;
    if (job.sbThresholdOverride)
        p.options.tolConfig.bbToSbThreshold = *job.sbThresholdOverride;
    p.fingerprint = configFingerprint(p.options, job.workload,
                                      job.requireHalt);
    return p;
}

/**
 * Capture and isolation-pipe jobs never touch the result cache: a
 * capture job's product is the trace file (which the cache does not
 * carry), and isolation runs are diagnostic sweeps whose extra
 * pipelines make them poor candidates for cross-campaign reuse.
 */
bool
cacheBypass(const BatchJob &job)
{
    return !job.options.captureTracePath.empty() ||
           job.options.tolOnlyPipe || job.options.appOnlyPipe ||
           job.options.tolModulePipe;
}

/**
 * Deterministic verify-hits selection: a splitmix64-style mix of the
 * config fingerprint mapped to [0,1) and compared against the
 * fraction. A pure function of the job — no RNG, no clock — so the
 * audited subset is identical on every machine and every re-run.
 */
bool
selectedForVerify(uint64_t fingerprint, double fraction)
{
    if (fraction <= 0.0)
        return false;
    if (fraction >= 1.0)
        return true;
    uint64_t z = fingerprint + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53 < fraction;
}

/**
 * Full bit-identity comparison of two snapshots, one line per
 * divergence (empty = identical). The same currency the
 * parallel-vs-serial and kill-and-resume gates trade in.
 */
std::string
diffSnapshots(const sim::RunSnapshot &fresh,
              const sim::RunSnapshot &cached)
{
    std::string diff;
    auto field = [&](const char *what, uint64_t got, uint64_t want) {
        if (got != want) {
            diff += strprintf("%s %llu != cached %llu\n", what,
                              static_cast<unsigned long long>(got),
                              static_cast<unsigned long long>(want));
        }
    };
    field("guest_retired", fresh.result.guestRetired,
          cached.result.guestRetired);
    field("halted", fresh.result.halted, cached.result.halted);
    field("sim_cycles", fresh.result.cycles, cached.result.cycles);
    if (fresh.timingCore != cached.timingCore) {
        diff += strprintf("timing_core %s != cached %s\n",
                          fresh.timingCore.c_str(),
                          cached.timingCore.c_str());
    }
    diff += timing::diffStats(fresh.stats, cached.stats);
    auto pipe = [&](const char *what,
                    const std::optional<timing::PipeStats> &a,
                    const std::optional<timing::PipeStats> &b) {
        if (a.has_value() != b.has_value())
            diff += strprintf("%s presence differs\n", what);
        else if (a)
            diff += timing::diffStats(*a, *b);
    };
    pipe("tol_only", fresh.tolOnly, cached.tolOnly);
    pipe("app_only", fresh.appOnly, cached.appOnly);
    pipe("tol_module", fresh.tolModule, cached.tolModule);
    diff += tol::diffTolStats(fresh.tolStats, cached.tolStats);
    if (fresh.profile.has_value() != cached.profile.has_value())
        diff += "profile presence differs\n";
    else if (fresh.profile)
        diff += profile::diffProfiles(*fresh.profile, *cached.profile);
    return diff;
}

/**
 * Run one attempt of one job start to finish on the calling thread.
 * Everything a job touches is job-local (its own System, memories,
 * pipelines, cancel token); the only shared services are the
 * workload registry, the logging switches, and the watchdog — all
 * thread-safe (docs/concurrency.md).
 */
JobResult
executeAttempt(const BatchJob &job, const ExecContext &ctx)
{
    JobResult r;
    // Identity up front, so a job that fails before (or during)
    // resolution still reports which workload it was.
    r.uri = job.workload;
    // fatal() anywhere below (unknown scheme, unreadable trace, bad
    // config) becomes a FatalError we classify into the taxonomy.
    ScopedFatalThrow fatal_throws;
    // Outlives the WatchdogArm scope below, as Watchdog requires.
    common::CancelToken token;
    try {
        PreparedJob prep = prepareJob(job);
        const workloads::Workload &workload = prep.workload;
        r.name = workload.name;
        r.suite = workload.suite;
        r.uri = workload.uri;
        // Fingerprint before wiring the cancel token: the token is
        // runtime plumbing, not part of the experiment definition.
        r.fingerprint = prep.fingerprint;
        if (ctx.timeoutMs)
            prep.options.cancel = &token;
        const sim::SimConfig cfg = sim::configFromOptions(prep.options);

        WatchdogArm deadline(ctx.watchdog, &token, ctx.timeoutMs);
        sim::System sys(cfg);
        sys.load(workload);
        const sim::SystemResult res = sys.run();
        deadline.fired();  // disarm before any post-run work

        r.snapshot = sim::snapshotFromSystem(sys, res);
        r.metrics = sim::collectMetrics(r.snapshot, workload.name,
                                        workload.suite);

        if (res.cancelled) {
            r.runError = {sim::RunErrorClass::Timeout, r.uri,
                          strprintf("wall-clock deadline of %llu ms "
                                    "exceeded; cancelled after %llu "
                                    "guest instructions (partial "
                                    "metrics retained)",
                                    static_cast<unsigned long long>(
                                        ctx.timeoutMs),
                                    static_cast<unsigned long long>(
                                        res.guestRetired))};
            r.error = r.runError.describe();
            return r;
        }
        if (job.requireHalt && !res.halted) {
            r.runError = {sim::RunErrorClass::BudgetExhausted, r.uri,
                          strprintf("guest did not reach HALT within "
                                    "the %llu-instruction budget",
                                    static_cast<unsigned long long>(
                                        cfg.guestBudget))};
            r.error = r.runError.describe();
            return r;
        }

        if (job.checkCapturedPins && workload.capturedPins)
            diffPins("capture", *workload.capturedPins, r, r.error);
        if (job.expectedPins)
            diffPins("expected", *job.expectedPins, r, r.error);
        if (!r.error.empty()) {
            // A determinism violation on intact inputs is an engine
            // defect: permanent, never retried.
            r.runError = {sim::RunErrorClass::Internal, r.uri,
                          r.error};
        }
        r.ok = r.error.empty();
    } catch (const FatalError &e) {
        r.ok = false;
        r.error = e.what();
        r.runError = sim::runErrorFromFatal(e, r.uri);
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
        r.runError = {sim::RunErrorClass::Internal, r.uri, e.what()};
    }
    return r;
}

/** executeAttempt plus the transient-failure retry loop. */
JobResult
executeJob(const BatchJob &job, const ExecContext &ctx,
           const BatchConfig &cfg)
{
    const auto start = std::chrono::steady_clock::now();
    JobResult r;
    uint64_t backoff_total = 0;
    for (unsigned attempt = 0;; ++attempt) {
        // From scratch every time: a retried attempt builds a fresh
        // System from the same (workload, options) pair, so its
        // numbers are bit-identical to a first-try success — retry
        // changes whether a result exists, never what it measures.
        r = executeAttempt(job, ctx);
        r.attempts = attempt + 1;
        if (r.ok || !r.runError.transient() || attempt >= cfg.retries)
            break;
        // The schedule is deterministic (attempt-indexed, no clock
        // reads, no jitter); only the sleeps themselves touch time.
        const uint64_t delay =
            backoffDelayMs(cfg.backoffBaseMs, attempt);
        backoff_total += delay;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay));
    }
    r.backoffMsApplied = backoff_total;
    r.durationMs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    return r;
}

/**
 * Try to satisfy @p job from a journal @p entry: same workload
 * string (checked by the caller), same effective config fingerprint,
 * pins re-verified against the *current* workload resolution — a
 * trace file that changed since the campaign started must not be
 * papered over by the journal. Any mismatch re-runs the job; any
 * resolution failure re-runs it too, so the failure is reported with
 * its proper classification by the normal path.
 */
std::optional<JobResult>
tryReplay(const BatchJob &job, size_t index, const JournalEntry &entry)
{
    ScopedFatalThrow fatal_throws;
    try {
        const PreparedJob prep = prepareJob(job);
        if (prep.fingerprint != entry.fingerprint) {
            warn("journal: job %zu (%s): config fingerprint changed; "
                 "re-running",
                 index, job.workload.c_str());
            return std::nullopt;
        }

        JobResult r;
        r.name = prep.workload.name;
        r.suite = prep.workload.suite;
        r.uri = prep.workload.uri;
        r.snapshot = entry.snapshot;
        r.fingerprint = prep.fingerprint;
        r.fromJournal = true;
        r.attempts = 0;

        std::string pin_error;
        if (job.checkCapturedPins && prep.workload.capturedPins) {
            diffPins("capture", *prep.workload.capturedPins, r,
                     pin_error);
        }
        if (job.expectedPins)
            diffPins("expected", *job.expectedPins, r, pin_error);
        if (!pin_error.empty()) {
            warn("journal: job %zu (%s): journaled result no longer "
                 "matches pins; re-running:\n%s",
                 index, job.workload.c_str(), pin_error.c_str());
            return std::nullopt;
        }

        r.metrics = sim::collectMetrics(r.snapshot,
                                        prep.workload.name,
                                        prep.workload.suite);
        r.ok = true;
        return r;
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

/**
 * Try to satisfy @p job from the result cache. A valid, pin-clean
 * hit returns a complete result without simulating; verify-hits mode
 * may additionally re-simulate and either bless the hit or fail the
 * job. nullopt = miss (absent, damaged, identity mismatch, stale
 * pins, or resolution failure) — the caller simulates.
 */
std::optional<JobResult>
tryCacheHit(const BatchJob &job, ResultCache &cache,
            const ExecContext &ctx, const BatchConfig &cfg)
{
    ScopedFatalThrow fatal_throws;
    try {
        const PreparedJob prep = prepareJob(job);
        const CacheKey key{prep.workload.uri, prep.fingerprint,
                           std::string(kJournalEngineVersion)};
        std::optional<sim::RunSnapshot> snap = cache.lookup(key);
        if (!snap)
            return std::nullopt;

        JobResult r;
        r.name = prep.workload.name;
        r.suite = prep.workload.suite;
        r.uri = prep.workload.uri;
        r.snapshot = std::move(*snap);
        r.fingerprint = prep.fingerprint;
        r.cacheStatus = CacheStatus::Hit;
        r.attempts = 0;

        // Pins re-verified against the current workload resolution,
        // exactly like journal replay: a trace whose in-file pins
        // changed invalidates the cached result.
        std::string pin_error;
        if (job.checkCapturedPins && prep.workload.capturedPins) {
            diffPins("capture", *prep.workload.capturedPins, r,
                     pin_error);
        }
        if (job.expectedPins)
            diffPins("expected", *job.expectedPins, r, pin_error);
        if (!pin_error.empty()) {
            warn("result cache: %s: cached result no longer matches "
                 "pins; re-simulating:\n%s",
                 job.workload.c_str(), pin_error.c_str());
            return std::nullopt;
        }

        if (selectedForVerify(prep.fingerprint,
                              cfg.verifyHitFraction)) {
            const JobResult fresh = executeJob(job, ctx, cfg);
            r.attempts = fresh.attempts;
            r.durationMs = fresh.durationMs;
            std::string diff;
            if (!fresh.ok)
                diff = "fresh run failed: " + fresh.error;
            else
                diff = diffSnapshots(fresh.snapshot, r.snapshot);
            if (!diff.empty()) {
                // Either the cache or the engine broke determinism;
                // both poison the campaign. Hard-fail the job —
                // permanent, never retried.
                r.ok = false;
                r.error = strprintf(
                    "verify-hits: cached snapshot for '%s' diverges "
                    "from fresh simulation:\n%s",
                    job.workload.c_str(), diff.c_str());
                r.runError = {sim::RunErrorClass::Internal, r.uri,
                              r.error};
                return r;
            }
            r.verifiedHit = true;
        }

        r.metrics = sim::collectMetrics(r.snapshot,
                                        prep.workload.name,
                                        prep.workload.suite);
        r.ok = true;
        return r;
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

/**
 * One dedup group: jobs whose effective config fingerprints are
 * identical. The lowest index is the leader; FIFO dispatch claims it
 * before any follower, so a follower blocking on the leader's
 * completion can never deadlock the pool.
 */
struct DedupGroup
{
    size_t leader = 0;
    /** Resolved once in the pre-pass; every member resolves to the
     *  same workload (same workload string). */
    workloads::Workload workload;

    void
    markDone()
    {
        {
            std::lock_guard<std::mutex> lock(m);
            done = true;
        }
        cv.notify_all();
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [this] { return done; });
    }

  private:
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
};

/**
 * Build a follower's result from its dedup leader's successful run.
 * The engine is deterministic, so the leader's snapshot IS what a
 * fresh run of this slot would produce — metrics are recomputed (a
 * pure function of the snapshot) and the follower's OWN pin
 * expectations are re-applied, so a per-slot pin mismatch fails this
 * slot exactly as a fresh run would have.
 */
JobResult
fanOutResult(const BatchJob &job, const workloads::Workload &workload,
             const JobResult &lead)
{
    JobResult r;
    r.name = workload.name;
    r.suite = workload.suite;
    r.uri = workload.uri;
    r.snapshot = lead.snapshot;
    r.fingerprint = lead.fingerprint;
    r.deduped = true;
    r.attempts = 0;

    std::string pin_error;
    if (job.checkCapturedPins && workload.capturedPins)
        diffPins("capture", *workload.capturedPins, r, pin_error);
    if (job.expectedPins)
        diffPins("expected", *job.expectedPins, r, pin_error);
    if (!pin_error.empty()) {
        r.error = pin_error;
        r.runError = {sim::RunErrorClass::Internal, r.uri, pin_error};
        return r;
    }
    r.metrics = sim::collectMetrics(r.snapshot, workload.name,
                                    workload.suite);
    r.ok = true;
    return r;
}

} // namespace

BatchRunner::BatchRunner(BatchConfig config) : cfg(std::move(config)) {}

unsigned
BatchRunner::effectiveWorkers(size_t jobCount) const
{
    unsigned workers = cfg.workers;
    if (workers == 0)
        workers = std::thread::hardware_concurrency();
    if (workers == 0)
        workers = 1;
    if (jobCount < workers)
        workers = static_cast<unsigned>(jobCount);
    return workers;
}

std::vector<JobResult>
BatchRunner::run(const std::vector<BatchJob> &jobs) const
{
    fatal_if(cfg.shard.count == 0,
             "batch runner: shard count must be >= 1");
    fatal_if(cfg.shard.index >= cfg.shard.count,
             "batch runner: shard index %u out of range for %u "
             "shard(s)",
             cfg.shard.index, cfg.shard.count);

    // Two jobs capturing to one path would interleave writes into the
    // same trace file; that is a batch-construction error, caught
    // before any work starts (checked batch-wide, not per shard: two
    // shards of one campaign racing on a path is the same error).
    std::set<std::string> capture_paths;
    for (const BatchJob &job : jobs) {
        if (job.options.captureTracePath.empty())
            continue;
        fatal_if(!capture_paths.insert(job.options.captureTracePath)
                      .second,
                 "batch runner: two jobs capture to '%s'",
                 job.options.captureTracePath.c_str());
    }

    std::vector<JobResult> results(jobs.size());
    std::vector<char> replayed(jobs.size(), 0);

    // Stable job-index partition: slots outside this shard are marked
    // and never executed, journaled, cached or reported.
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (i % cfg.shard.count != cfg.shard.index)
            results[i].skipped = true;
    }

    // Resume pass: satisfy jobs from an existing journal before any
    // worker starts, then keep the journal open for appends.
    std::unique_ptr<Journal> journal;
    if (!cfg.journalPath.empty()) {
        const JournalLoad load = loadJournal(cfg.journalPath);
        if (load.skippedLines) {
            warn("journal '%s': skipped %zu damaged line(s)",
                 cfg.journalPath.c_str(), load.skippedLines);
        }
        if (!load.entries.empty() &&
            load.engine != kJournalEngineVersion) {
            warn("journal '%s': engine '%s' does not match '%s'; "
                 "ignoring %zu completed job(s)",
                 cfg.journalPath.c_str(), load.engine.c_str(),
                 kJournalEngineVersion, load.entries.size());
        } else {
            std::unordered_map<uint64_t, const JournalEntry *> by_job;
            for (const JournalEntry &e : load.entries)
                by_job[e.jobIndex] = &e;  // last write wins
            for (size_t i = 0; i < jobs.size(); ++i) {
                if (results[i].skipped)
                    continue;
                // Capture jobs always re-run: their product is the
                // capture file, which the journal does not carry.
                if (!jobs[i].options.captureTracePath.empty())
                    continue;
                const auto it = by_job.find(i);
                if (it == by_job.end() ||
                    it->second->workload != jobs[i].workload) {
                    continue;
                }
                if (std::optional<JobResult> r =
                        tryReplay(jobs[i], i, *it->second)) {
                    results[i] = std::move(*r);
                    replayed[i] = 1;
                }
            }
        }
        journal = std::make_unique<Journal>(cfg.journalPath);
        if (cfg.onJobDone) {
            for (size_t i = 0; i < jobs.size(); ++i) {
                if (replayed[i])
                    cfg.onJobDone(i, results[i]);
            }
        }
    }

    std::unique_ptr<ResultCache> cache;
    if (!cfg.cacheDir.empty())
        cache = std::make_unique<ResultCache>(cfg.cacheDir);

    // Dedup pre-pass: group the still-pending jobs of this shard by
    // effective config fingerprint. Only workload strings appearing
    // more than once can collide (the fingerprint folds the workload
    // string in), so resolution — which may read a trace header — is
    // paid only for duplicated workloads. A group whose resolution
    // fails is left ungrouped: the execute path reports the failure
    // per job with its proper classification.
    std::vector<std::shared_ptr<DedupGroup>> group_of(jobs.size());
    {
        std::unordered_map<std::string, std::vector<size_t>>
            by_workload;
        for (size_t i = 0; i < jobs.size(); ++i) {
            if (results[i].skipped || replayed[i])
                continue;
            // Capture jobs are never deduped: each must actually run
            // to produce its capture file.
            if (!jobs[i].options.captureTracePath.empty())
                continue;
            by_workload[jobs[i].workload].push_back(i);
        }
        for (auto &[wl, members] : by_workload) {
            if (members.size() < 2)
                continue;
            ScopedFatalThrow fatal_throws;
            try {
                const workloads::Workload workload =
                    workloads::resolveWorkload(wl);
                std::unordered_map<uint64_t, std::vector<size_t>>
                    by_fp;
                for (const size_t i : members) {
                    sim::MetricsOptions options = jobs[i].options;
                    sim::applyCaptureRecipe(options, workload);
                    if (jobs[i].guestBudgetOverride) {
                        options.guestBudget =
                            *jobs[i].guestBudgetOverride;
                    }
                    if (jobs[i].sbThresholdOverride) {
                        options.tolConfig.bbToSbThreshold =
                            *jobs[i].sbThresholdOverride;
                    }
                    by_fp[configFingerprint(options, wl,
                                            jobs[i].requireHalt)]
                        .push_back(i);
                }
                for (auto &[fp, dup] : by_fp) {
                    if (dup.size() < 2)
                        continue;
                    auto grp = std::make_shared<DedupGroup>();
                    grp->leader = dup.front();  // lowest index
                    grp->workload = workload;
                    for (const size_t i : dup)
                        group_of[i] = grp;
                }
            } catch (const std::exception &) {
                // fall through: members run (and fail) individually
            }
        }
    }

    const unsigned workers = effectiveWorkers(jobs.size());
    std::optional<Watchdog> watchdog;
    if (cfg.timeoutMs > 0)
        watchdog.emplace();
    const ExecContext ctx{watchdog ? &*watchdog : nullptr,
                          cfg.timeoutMs};

    // Cache-aware execution of one still-pending job on the calling
    // thread: lookup-before-simulate, store-after-miss.
    auto run_one = [&](const BatchJob &job) -> JobResult {
        if (!cache)
            return executeJob(job, ctx, cfg);
        if (cacheBypass(job)) {
            JobResult r = executeJob(job, ctx, cfg);
            r.cacheStatus = CacheStatus::Bypass;
            return r;
        }
        if (std::optional<JobResult> hit =
                tryCacheHit(job, *cache, ctx, cfg)) {
            return std::move(*hit);
        }
        JobResult r = executeJob(job, ctx, cfg);
        r.cacheStatus = CacheStatus::Miss;
        if (r.ok) {
            cache->store({r.uri, r.fingerprint,
                          std::string(kJournalEngineVersion)},
                         r.snapshot);
        }
        return r;
    };

    // FIFO dispatch, no stealing: the cursor hands each worker the
    // lowest unclaimed job index; each worker writes only its own
    // result slots, so the vector needs no lock.
    std::atomic<size_t> cursor{0};
    std::mutex done_mutex;
    auto drain = [&] {
        for (;;) {
            const size_t index =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (index >= jobs.size())
                return;
            if (results[index].skipped || replayed[index])
                continue;
            const BatchJob &job = jobs[index];
            const std::shared_ptr<DedupGroup> &grp = group_of[index];

            JobResult r;
            if (grp && grp->leader != index) {
                // Follower: wait for the leader (claimed earlier by
                // FIFO order) and fan its snapshot out. A failed
                // leader fans nothing — the follower runs normally
                // so its slot carries its own classified error.
                grp->wait();
                const JobResult &lead = results[grp->leader];
                if (lead.ok)
                    r = fanOutResult(job, grp->workload, lead);
                else
                    r = run_one(job);
            } else {
                r = run_one(job);
            }
            results[index] = std::move(r);
            if (grp && grp->leader == index)
                grp->markDone();

            const JobResult &res = results[index];
            std::lock_guard<std::mutex> lock(done_mutex);
            // Journal before reporting: once onJobDone has seen a
            // job, a crash must not lose it.
            if (journal && res.ok &&
                job.options.captureTracePath.empty()) {
                JournalEntry entry;
                entry.jobIndex = index;
                entry.workload = job.workload;
                entry.fingerprint = res.fingerprint;
                entry.name = res.name;
                entry.suite = res.suite;
                entry.uri = res.uri;
                entry.snapshot = res.snapshot;
                journal->append(entry);
            }
            if (cfg.onJobDone)
                cfg.onJobDone(index, res);
        }
    };

    if (workers <= 1) {
        // Serial reference path: same executeJob, calling thread.
        drain();
        return results;
    }
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(drain);
    for (std::thread &t : pool)
        t.join();
    return results;
}

} // namespace darco::runner
