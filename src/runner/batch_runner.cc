#include "runner/batch_runner.hh"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>

#include "common/logging.hh"
#include "runner/journal.hh"
#include "runner/watchdog.hh"
#include "sim/system.hh"
#include "workloads/source.hh"

namespace darco::runner {

namespace {

/** Append a pin-mismatch line for every field that diverged. */
void
diffPins(const char *label, const trace::TracePins &pins,
         const JobResult &r, std::string &error)
{
    const tol::TolStats &ts = r.snapshot.tolStats;
    auto check = [&](const char *what, uint64_t got, uint64_t want) {
        if (got != want) {
            error += strprintf(
                "%s pin mismatch: %s %llu != pinned %llu\n", label,
                what, static_cast<unsigned long long>(got),
                static_cast<unsigned long long>(want));
        }
    };
    check("guest_retired", r.snapshot.result.guestRetired,
          pins.guestRetired);
    check("sim_cycles", r.snapshot.result.cycles, pins.simCycles);
    check("host_records", r.snapshot.stats.records, pins.hostRecords);
    // timing_core is a determinism field too (check_perf.py): a
    // replay that advanced time on a different core than the
    // capture is not the same experiment, even if the counters
    // happen to agree.
    if (!pins.timingCore.empty() &&
        r.snapshot.timingCore != pins.timingCore) {
        error += strprintf(
            "%s pin mismatch: timing_core %s != pinned %s\n", label,
            r.snapshot.timingCore.c_str(), pins.timingCore.c_str());
    }
    check("dyn_im", ts.dynIm, pins.dynIm);
    check("dyn_bbm", ts.dynBbm, pins.dynBbm);
    check("dyn_sbm", ts.dynSbm, pins.dynSbm);
    check("bbs_translated", ts.bbsTranslated, pins.bbsTranslated);
    check("sbs_created", ts.sbsCreated, pins.sbsCreated);
    check("guest_indirect_branches", ts.guestIndirectBranches,
          pins.guestIndirectBranches);
}

/** Per-batch execution services shared by every worker. */
struct ExecContext
{
    Watchdog *watchdog = nullptr;
    uint64_t timeoutMs = 0;
};

/**
 * Run one attempt of one job start to finish on the calling thread.
 * Everything a job touches is job-local (its own System, memories,
 * pipelines, cancel token); the only shared services are the
 * workload registry, the logging switches, and the watchdog — all
 * thread-safe (docs/concurrency.md).
 */
JobResult
executeAttempt(const BatchJob &job, const ExecContext &ctx)
{
    JobResult r;
    // Identity up front, so a job that fails before (or during)
    // resolution still reports which workload it was.
    r.uri = job.workload;
    // fatal() anywhere below (unknown scheme, unreadable trace, bad
    // config) becomes a FatalError we classify into the taxonomy.
    ScopedFatalThrow fatal_throws;
    // Outlives the WatchdogArm scope below, as Watchdog requires.
    common::CancelToken token;
    try {
        const workloads::Workload workload =
            workloads::resolveWorkload(job.workload);
        r.name = workload.name;
        r.suite = workload.suite;
        r.uri = workload.uri;

        // Same per-job wiring as the serial sweep reference path
        // (bench_util::runSweep with --jobs 1): recipe, then
        // explicit per-job overrides, then the one shared
        // MetricsOptions -> SimConfig translation.
        sim::MetricsOptions options = job.options;
        sim::applyCaptureRecipe(options, workload);
        if (job.guestBudgetOverride)
            options.guestBudget = *job.guestBudgetOverride;
        if (job.sbThresholdOverride) {
            options.tolConfig.bbToSbThreshold =
                *job.sbThresholdOverride;
        }
        // Fingerprint before wiring the cancel token: the token is
        // runtime plumbing, not part of the experiment definition.
        r.fingerprint = configFingerprint(options, job.workload,
                                          job.requireHalt);
        if (ctx.timeoutMs)
            options.cancel = &token;
        const sim::SimConfig cfg = sim::configFromOptions(options);

        WatchdogArm deadline(ctx.watchdog, &token, ctx.timeoutMs);
        sim::System sys(cfg);
        sys.load(workload);
        const sim::SystemResult res = sys.run();
        deadline.fired();  // disarm before any post-run work

        r.snapshot = sim::snapshotFromSystem(sys, res);
        r.metrics = sim::collectMetrics(r.snapshot, workload.name,
                                        workload.suite);

        if (res.cancelled) {
            r.runError = {sim::RunErrorClass::Timeout, r.uri,
                          strprintf("wall-clock deadline of %llu ms "
                                    "exceeded; cancelled after %llu "
                                    "guest instructions (partial "
                                    "metrics retained)",
                                    static_cast<unsigned long long>(
                                        ctx.timeoutMs),
                                    static_cast<unsigned long long>(
                                        res.guestRetired))};
            r.error = r.runError.describe();
            return r;
        }
        if (job.requireHalt && !res.halted) {
            r.runError = {sim::RunErrorClass::BudgetExhausted, r.uri,
                          strprintf("guest did not reach HALT within "
                                    "the %llu-instruction budget",
                                    static_cast<unsigned long long>(
                                        cfg.guestBudget))};
            r.error = r.runError.describe();
            return r;
        }

        if (job.checkCapturedPins && workload.capturedPins)
            diffPins("capture", *workload.capturedPins, r, r.error);
        if (job.expectedPins)
            diffPins("expected", *job.expectedPins, r, r.error);
        if (!r.error.empty()) {
            // A determinism violation on intact inputs is an engine
            // defect: permanent, never retried.
            r.runError = {sim::RunErrorClass::Internal, r.uri,
                          r.error};
        }
        r.ok = r.error.empty();
    } catch (const FatalError &e) {
        r.ok = false;
        r.error = e.what();
        r.runError = sim::runErrorFromFatal(e, r.uri);
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
        r.runError = {sim::RunErrorClass::Internal, r.uri, e.what()};
    }
    return r;
}

/** executeAttempt plus the transient-failure retry loop. */
JobResult
executeJob(const BatchJob &job, const ExecContext &ctx,
           const BatchConfig &cfg)
{
    const auto start = std::chrono::steady_clock::now();
    JobResult r;
    uint64_t backoff_total = 0;
    for (unsigned attempt = 0;; ++attempt) {
        // From scratch every time: a retried attempt builds a fresh
        // System from the same (workload, options) pair, so its
        // numbers are bit-identical to a first-try success — retry
        // changes whether a result exists, never what it measures.
        r = executeAttempt(job, ctx);
        r.attempts = attempt + 1;
        if (r.ok || !r.runError.transient() || attempt >= cfg.retries)
            break;
        // The schedule is deterministic (attempt-indexed, no clock
        // reads, no jitter); only the sleeps themselves touch time.
        const uint64_t delay =
            backoffDelayMs(cfg.backoffBaseMs, attempt);
        backoff_total += delay;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay));
    }
    r.backoffMsApplied = backoff_total;
    r.durationMs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    return r;
}

/**
 * Try to satisfy @p job from a journal @p entry: same workload
 * string (checked by the caller), same effective config fingerprint,
 * pins re-verified against the *current* workload resolution — a
 * trace file that changed since the campaign started must not be
 * papered over by the journal. Any mismatch re-runs the job; any
 * resolution failure re-runs it too, so the failure is reported with
 * its proper classification by the normal path.
 */
std::optional<JobResult>
tryReplay(const BatchJob &job, size_t index, const JournalEntry &entry)
{
    ScopedFatalThrow fatal_throws;
    try {
        const workloads::Workload workload =
            workloads::resolveWorkload(job.workload);
        sim::MetricsOptions options = job.options;
        sim::applyCaptureRecipe(options, workload);
        if (job.guestBudgetOverride)
            options.guestBudget = *job.guestBudgetOverride;
        if (job.sbThresholdOverride) {
            options.tolConfig.bbToSbThreshold =
                *job.sbThresholdOverride;
        }
        const uint64_t fp = configFingerprint(options, job.workload,
                                              job.requireHalt);
        if (fp != entry.fingerprint) {
            warn("journal: job %zu (%s): config fingerprint changed; "
                 "re-running",
                 index, job.workload.c_str());
            return std::nullopt;
        }

        JobResult r;
        r.name = workload.name;
        r.suite = workload.suite;
        r.uri = workload.uri;
        r.snapshot = entry.snapshot;
        r.fingerprint = fp;
        r.fromJournal = true;
        r.attempts = 0;

        std::string pin_error;
        if (job.checkCapturedPins && workload.capturedPins)
            diffPins("capture", *workload.capturedPins, r, pin_error);
        if (job.expectedPins)
            diffPins("expected", *job.expectedPins, r, pin_error);
        if (!pin_error.empty()) {
            warn("journal: job %zu (%s): journaled result no longer "
                 "matches pins; re-running:\n%s",
                 index, job.workload.c_str(), pin_error.c_str());
            return std::nullopt;
        }

        r.metrics = sim::collectMetrics(r.snapshot, workload.name,
                                        workload.suite);
        r.ok = true;
        return r;
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

} // namespace

BatchRunner::BatchRunner(BatchConfig config) : cfg(std::move(config)) {}

unsigned
BatchRunner::effectiveWorkers(size_t jobCount) const
{
    unsigned workers = cfg.workers;
    if (workers == 0)
        workers = std::thread::hardware_concurrency();
    if (workers == 0)
        workers = 1;
    if (jobCount < workers)
        workers = static_cast<unsigned>(jobCount);
    return workers;
}

std::vector<JobResult>
BatchRunner::run(const std::vector<BatchJob> &jobs) const
{
    // Two jobs capturing to one path would interleave writes into the
    // same trace file; that is a batch-construction error, caught
    // before any work starts.
    std::set<std::string> capture_paths;
    for (const BatchJob &job : jobs) {
        if (job.options.captureTracePath.empty())
            continue;
        fatal_if(!capture_paths.insert(job.options.captureTracePath)
                      .second,
                 "batch runner: two jobs capture to '%s'",
                 job.options.captureTracePath.c_str());
    }

    std::vector<JobResult> results(jobs.size());
    std::vector<char> replayed(jobs.size(), 0);

    // Resume pass: satisfy jobs from an existing journal before any
    // worker starts, then keep the journal open for appends.
    std::unique_ptr<Journal> journal;
    if (!cfg.journalPath.empty()) {
        const JournalLoad load = loadJournal(cfg.journalPath);
        if (load.skippedLines) {
            warn("journal '%s': skipped %zu damaged line(s)",
                 cfg.journalPath.c_str(), load.skippedLines);
        }
        if (!load.entries.empty() &&
            load.engine != kJournalEngineVersion) {
            warn("journal '%s': engine '%s' does not match '%s'; "
                 "ignoring %zu completed job(s)",
                 cfg.journalPath.c_str(), load.engine.c_str(),
                 kJournalEngineVersion, load.entries.size());
        } else {
            std::unordered_map<uint64_t, const JournalEntry *> by_job;
            for (const JournalEntry &e : load.entries)
                by_job[e.jobIndex] = &e;  // last write wins
            for (size_t i = 0; i < jobs.size(); ++i) {
                // Capture jobs always re-run: their product is the
                // capture file, which the journal does not carry.
                if (!jobs[i].options.captureTracePath.empty())
                    continue;
                const auto it = by_job.find(i);
                if (it == by_job.end() ||
                    it->second->workload != jobs[i].workload) {
                    continue;
                }
                if (std::optional<JobResult> r =
                        tryReplay(jobs[i], i, *it->second)) {
                    results[i] = std::move(*r);
                    replayed[i] = 1;
                }
            }
        }
        journal = std::make_unique<Journal>(cfg.journalPath);
        if (cfg.onJobDone) {
            for (size_t i = 0; i < jobs.size(); ++i) {
                if (replayed[i])
                    cfg.onJobDone(i, results[i]);
            }
        }
    }

    const unsigned workers = effectiveWorkers(jobs.size());
    std::optional<Watchdog> watchdog;
    if (cfg.timeoutMs > 0)
        watchdog.emplace();
    const ExecContext ctx{watchdog ? &*watchdog : nullptr,
                          cfg.timeoutMs};

    // FIFO dispatch, no stealing: the cursor hands each worker the
    // lowest unclaimed job index; each worker writes only its own
    // result slots, so the vector needs no lock.
    std::atomic<size_t> cursor{0};
    std::mutex done_mutex;
    auto drain = [&] {
        for (;;) {
            const size_t index =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (index >= jobs.size())
                return;
            if (replayed[index])
                continue;
            results[index] = executeJob(jobs[index], ctx, cfg);
            const JobResult &r = results[index];
            std::lock_guard<std::mutex> lock(done_mutex);
            // Journal before reporting: once onJobDone has seen a
            // job, a crash must not lose it.
            if (journal && r.ok &&
                jobs[index].options.captureTracePath.empty()) {
                JournalEntry entry;
                entry.jobIndex = index;
                entry.workload = jobs[index].workload;
                entry.fingerprint = r.fingerprint;
                entry.name = r.name;
                entry.suite = r.suite;
                entry.uri = r.uri;
                entry.snapshot = r.snapshot;
                journal->append(entry);
            }
            if (cfg.onJobDone)
                cfg.onJobDone(index, r);
        }
    };

    if (workers <= 1) {
        // Serial reference path: same executeJob, calling thread.
        drain();
        return results;
    }
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(drain);
    for (std::thread &t : pool)
        t.join();
    return results;
}

} // namespace darco::runner
