/**
 * @file
 * Content-addressed, on-disk cache of completed `sim::RunSnapshot`s,
 * keyed on (workload URI identity, config fingerprint, engine
 * version). See docs/campaigns.md.
 *
 * The cache turns a repeated campaign from O(campaign) into O(delta):
 * a warm re-run of an identical sweep performs zero simulations. It
 * can do this *safely* only because the engine is deterministic — a
 * cached snapshot is not an approximation of what a fresh run would
 * produce, it is bit-identical to it, and the opt-in verify-hits mode
 * (runner/batch_runner.hh) re-simulates a fraction of hits to prove
 * exactly that.
 *
 * Key and addressing. An entry's identity is the triple
 * (workload URI, runner::configFingerprint, engine version). The
 * fingerprint already folds in the workload *string* and every
 * effective MetricsOptions field, so any config change misses; the
 * URI and engine version are carried separately so that workload
 * renames and engine bumps invalidate even across fingerprint-hash
 * collisions. The triple is serialized into a canonical
 * length-prefixed dump, FNV-1a hashed, and the 16-hex-digit hash is
 * the file name. On lookup the stored triple is compared field by
 * field against the requested key — a file-name collision degrades to
 * a miss, never to a wrong snapshot.
 *
 * Entry format. One sealed line sharing the campaign journal's codec
 * (runner/snapshot_codec.hh):
 *
 *     {"darco_cache":1,"engine":"...","workload":"...",
 *      "fp":"<16 hex>",<snapshot fields>,"csum":"<16 hex>"}
 *
 * Readers authenticate the checksum before parsing, so torn,
 * truncated or bit-damaged entries are rejected structurally and the
 * job re-simulates (the fresh store then replaces the bad file).
 *
 * Concurrency. Writes are atomic rename-on-commit: the entry is
 * fully written and flushed to a unique temp name in the cache
 * directory, then rename(2)'d over the final name. Concurrent shards
 * sharing one directory therefore never observe a torn entry — they
 * see either no file or a complete one — and a lost rename race just
 * means the last writer's (bit-identical) entry wins.
 *
 * Durability contract — deliberately weaker than the journal's. A
 * journal append that fails must fatal (the runner would otherwise
 * report a job done on the strength of an entry that does not
 * exist); a cache store that fails costs only a future re-simulation,
 * so it warns and continues.
 */

#ifndef DARCO_RUNNER_RESULT_CACHE_HH
#define DARCO_RUNNER_RESULT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "sim/metrics.hh"

namespace darco::runner {

/** Identity of one cached result. */
struct CacheKey
{
    /** Resolved workload URI (workloads/source.hh identity). */
    std::string workloadUri;
    /** runner::configFingerprint of the job's effective config. */
    uint64_t fingerprint = 0;
    /** Engine version pin (kJournalEngineVersion for live runs). */
    std::string engine;
};

class ResultCache
{
  public:
    /**
     * Open (creating if missing) the cache directory. An unusable
     * directory is a configuration error and fatals: silently
     * degrading to 0% hits would defeat the point of pointing a
     * campaign at a cache.
     */
    explicit ResultCache(const std::string &dir);

    /**
     * Look the key up. Returns the stored snapshot only if the entry
     * authenticates, parses, and its stored identity triple matches
     * @p key exactly; anything else — no file, torn line, checksum
     * mismatch, identity mismatch — is a miss.
     */
    std::optional<sim::RunSnapshot> lookup(const CacheKey &key);

    /**
     * Publish a snapshot under @p key via atomic rename-on-commit.
     * Best-effort: failures warn and return false (the result is
     * still in the journal / in memory; only future reuse is lost).
     */
    bool store(const CacheKey &key, const sim::RunSnapshot &snap);

    /** Full path of the entry file addressing @p key. */
    std::string entryPath(const CacheKey &key) const;

    const std::string &directory() const { return dir; }

  private:
    std::string dir;
    /** Disambiguates temp names within this process. */
    std::atomic<uint64_t> tmpSeq{0};
};

} // namespace darco::runner

#endif // DARCO_RUNNER_RESULT_CACHE_HH
