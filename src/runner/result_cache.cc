#include "runner/result_cache.hh"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "runner/snapshot_codec.hh"

namespace darco::runner {

namespace {

/**
 * Canonical dump of the identity triple. Length-prefixed like the
 * fingerprint's workload field, so no pair of distinct triples can
 * serialize to the same bytes.
 */
std::string
keyDump(const CacheKey &key)
{
    std::string dump;
    dump.reserve(key.engine.size() + key.workloadUri.size() + 64);
    dump += strprintf("engine[%zu]=", key.engine.size());
    dump += key.engine;
    dump += strprintf(";workload[%zu]=", key.workloadUri.size());
    dump += key.workloadUri;
    dump += strprintf(";fp=%016llx;",
                      static_cast<unsigned long long>(key.fingerprint));
    return dump;
}

std::string
serializeEntry(const CacheKey &key, const sim::RunSnapshot &snap)
{
    std::string body = strprintf(
        "{\"darco_cache\":1,\"engine\":\"%s\",\"workload\":\"%s\","
        "\"fp\":\"%016llx\"",
        codec::escape(key.engine).c_str(),
        codec::escape(key.workloadUri).c_str(),
        static_cast<unsigned long long>(key.fingerprint));
    codec::appendSnapshotFields(body, snap);
    return codec::sealLine(body);
}

} // namespace

ResultCache::ResultCache(const std::string &dir) : dir(dir)
{
    if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
        fatal_kind(ErrKind::Io,
                   "result cache: cannot create directory '%s': %s",
                   dir.c_str(), std::strerror(errno));
    }
    struct stat st{};
    if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
        fatal_kind(ErrKind::Io,
                   "result cache: '%s' is not a directory",
                   dir.c_str());
    }
}

std::string
ResultCache::entryPath(const CacheKey &key) const
{
    return dir + strprintf("/%016llx.dcache",
                           static_cast<unsigned long long>(
                               codec::hashString(keyDump(key))));
}

std::optional<sim::RunSnapshot>
ResultCache::lookup(const CacheKey &key)
{
    const std::string path = entryPath(key);
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return std::nullopt;
    std::string data;
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, got);
    std::fclose(f);
    if (const size_t nl = data.find('\n'); nl != std::string::npos)
        data.resize(nl);

    // Authenticate before parsing; any structural problem means the
    // entry does not exist (the re-simulated store will replace it).
    if (!codec::checksummedBody(data)) {
        warn("result cache: rejecting damaged entry '%s'",
             path.c_str());
        return std::nullopt;
    }
    const auto version = codec::getU64(data, "darco_cache");
    const auto engine = codec::getStr(data, "engine");
    const auto workload = codec::getStr(data, "workload");
    const auto fp = codec::getHex64(data, "fp");
    if (!version || *version != 1 || !engine || !workload || !fp)
        return std::nullopt;
    // Exact identity match: a file-name hash collision, an engine
    // bump or a workload rename all degrade to a miss here even
    // though the entry itself is intact.
    if (*engine != key.engine || *workload != key.workloadUri ||
        *fp != key.fingerprint) {
        return std::nullopt;
    }
    sim::RunSnapshot snap;
    if (!codec::parseSnapshotFields(data, snap)) {
        warn("result cache: rejecting unparseable entry '%s'",
             path.c_str());
        return std::nullopt;
    }
    return snap;
}

bool
ResultCache::store(const CacheKey &key, const sim::RunSnapshot &snap)
{
    const std::string line = serializeEntry(key, snap) + "\n";
    const std::string path = entryPath(key);
    // Unique temp name in the same directory (rename must not cross
    // filesystems): pid disambiguates concurrent shards, the sequence
    // number disambiguates threads within this process.
    const std::string tmp = path + strprintf(
        ".tmp.%llu.%llu",
        static_cast<unsigned long long>(::getpid()),
        static_cast<unsigned long long>(
            tmpSeq.fetch_add(1, std::memory_order_relaxed)));

    FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        warn("result cache: cannot create '%s': %s", tmp.c_str(),
             std::strerror(errno));
        return false;
    }
    const bool wrote =
        std::fwrite(line.data(), 1, line.size(), f) == line.size() &&
        std::fflush(f) == 0;
    std::fclose(f);
    if (!wrote || std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("result cache: failed to publish '%s': %s", path.c_str(),
             std::strerror(errno));
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace darco::runner
