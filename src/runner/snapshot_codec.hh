/**
 * @file
 * Canonical flat-hex serialization of `sim::RunSnapshot` plus the
 * checksummed single-line envelope shared by every durable result
 * store in the runner layer.
 *
 * Two subsystems persist completed runs: the crash-resumable
 * campaign journal (runner/journal.hh, one JSONL entry per finished
 * job) and the content-addressed result cache (runner/result_cache.hh,
 * one file per (workload, config, engine) key). Both must agree,
 * byte for byte, on how a snapshot becomes text — the journal's
 * replay gate and the cache's verify-hits audit both hinge on a
 * parsed snapshot being indistinguishable from the run that produced
 * it (`timing::diffStats` / `tol::diffTolStats` /
 * `profile::diffProfiles` all empty). Keeping the codec in one place
 * makes that agreement structural instead of disciplined.
 *
 * Serialization rules (docs/robustness.md §4, docs/campaigns.md §2):
 *
 *  - `PipeStats` is all counters and fixed-size arrays; it
 *    round-trips as a raw-byte hex blob (static_assert-guarded
 *    trivially-copyable).
 *  - `RunProfile` serializes as a flat stream of u64 hex fields with
 *    length-prefixed maps; std::map iteration order is the sort
 *    order, so two equal profiles serialize identically (canonical).
 *  - `TolStats` counters are named decimal fields in a fixed order;
 *    the static mode map is sorted (eip, mode) pairs.
 *  - The envelope is one line of JSON-shaped key/value text sealed
 *    with an FNV-1a checksum over every byte of the body
 *    (`sealLine`). Readers authenticate before parsing
 *    (`checksummedBody`): a torn, truncated or bit-flipped line can
 *    never half-parse into a plausible snapshot.
 */

#ifndef DARCO_RUNNER_SNAPSHOT_CODEC_HH
#define DARCO_RUNNER_SNAPSHOT_CODEC_HH

#include <optional>
#include <string>

#include "sim/metrics.hh"

namespace darco::runner::codec {

/** FNV-1a over the bytes of @p s (the envelope checksum hash). */
uint64_t hashString(const std::string &s);

/** Minimal JSON string escaping: backslash, quote, control bytes. */
std::string escape(const std::string &s);

/**
 * Whole-line key lookup parsers. Safe despite values sharing the
 * line: every serialized value is either escaped (so the raw byte
 * sequence `"key":` cannot appear inside it) or hex/decimal (no
 * quotes at all), and each writer's key set is unique by
 * construction.
 */
std::optional<uint64_t> getU64(const std::string &line, const char *key);
std::optional<std::string> getStr(const std::string &line,
                                  const char *key);
/** 16-hex-digit string value parsed as a u64. */
std::optional<uint64_t> getHex64(const std::string &line,
                                 const char *key);

/**
 * Append the snapshot's serialized fields to @p body (leading comma
 * included): result scalars, timing core, the PipeStats blob(s), the
 * optional profile, every TolStats counter and the static mode map.
 * The caller owns the envelope (opening `{`, identity fields, seal).
 */
void appendSnapshotFields(std::string &body,
                          const sim::RunSnapshot &snap);

/**
 * Parse the fields appendSnapshotFields wrote back out of an
 * authenticated @p line. Returns false on any structural problem
 * (missing key, bad hex, wrong blob size) — callers treat that as
 * "entry does not exist", never as a partial snapshot.
 */
bool parseSnapshotFields(const std::string &line,
                         sim::RunSnapshot &snap);

/**
 * Seal @p body into a complete stored line: appends
 * `,"csum":"<fnv1a64 of body>"}`. @p body must start with `{` and
 * contain every field already serialized.
 */
std::string sealLine(const std::string &body);

/**
 * Authenticate a stored line: locate the trailing csum field, check
 * it against the body it covers, and return the body (everything
 * before the csum) — or nullopt for torn/truncated/bit-damaged
 * lines. Parsing only ever runs on an authenticated body.
 */
std::optional<std::string> checksummedBody(const std::string &line);

} // namespace darco::runner::codec

#endif // DARCO_RUNNER_SNAPSHOT_CODEC_HH
