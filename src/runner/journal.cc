#include "runner/journal.hh"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <type_traits>

#include "common/faultinject.hh"
#include "common/logging.hh"
#include "trace/trace.hh"

#include <csignal>

namespace darco::runner {

namespace {

uint64_t
hashString(const std::string &s)
{
    return trace::fnv1a64(
        reinterpret_cast<const uint8_t *>(s.data()), s.size());
}

/** Minimal JSON string escaping: backslash, quote, control bytes. */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '\\' || c == '"') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += strprintf("\\u%04x", c);
        } else {
            out += c;
        }
    }
    return out;
}

constexpr char kHexDigits[] = "0123456789abcdef";

void
appendHex(std::string &out, const uint8_t *data, size_t len)
{
    for (size_t i = 0; i < len; ++i) {
        out += kHexDigits[data[i] >> 4];
        out += kHexDigits[data[i] & 0xf];
    }
}

int
hexVal(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    return -1;
}

bool
decodeHex(const std::string &hex, uint8_t *out, size_t len)
{
    if (hex.size() != len * 2)
        return false;
    for (size_t i = 0; i < len; ++i) {
        const int hi = hexVal(hex[2 * i]);
        const int lo = hexVal(hex[2 * i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out[i] = static_cast<uint8_t>((hi << 4) | lo);
    }
    return true;
}

// PipeStats is all counters and fixed-size arrays; the journal
// round-trips it as raw bytes. Guarded so a future non-POD member
// breaks the build here instead of corrupting journals.
static_assert(std::is_trivially_copyable_v<timing::PipeStats>,
              "journal serializes PipeStats as raw bytes");

std::string
pipeStatsHex(const timing::PipeStats &ps)
{
    std::string out;
    out.reserve(sizeof(ps) * 2);
    uint8_t bytes[sizeof(ps)];
    std::memcpy(bytes, &ps, sizeof(ps));
    appendHex(out, bytes, sizeof(ps));
    return out;
}

bool
pipeStatsFromHex(const std::string &hex, timing::PipeStats &ps)
{
    uint8_t bytes[sizeof(ps)];
    if (!decodeHex(hex, bytes, sizeof(ps)))
        return false;
    std::memcpy(&ps, bytes, sizeof(ps));
    return true;
}

/**
 * Whole-line key lookup. Safe despite values being on the same line:
 * every serialized value is either escaped (so the raw byte sequence
 * `"key":` cannot appear inside it) or hex/decimal (no quotes at
 * all), and the key set is unique by construction.
 */
size_t
findKey(const std::string &line, const char *key)
{
    const std::string pat = strprintf("\"%s\":", key);
    const size_t pos = line.find(pat);
    return pos == std::string::npos ? std::string::npos
                                    : pos + pat.size();
}

std::optional<uint64_t>
getU64(const std::string &line, const char *key)
{
    const size_t pos = findKey(line, key);
    if (pos == std::string::npos || pos >= line.size())
        return std::nullopt;
    if (line[pos] < '0' || line[pos] > '9')
        return std::nullopt;
    return std::strtoull(line.c_str() + pos, nullptr, 10);
}

std::optional<std::string>
getStr(const std::string &line, const char *key)
{
    size_t pos = findKey(line, key);
    if (pos == std::string::npos || pos >= line.size() ||
        line[pos] != '"') {
        return std::nullopt;
    }
    std::string out;
    for (++pos; pos < line.size(); ++pos) {
        const char c = line[pos];
        if (c == '"')
            return out;
        if (c != '\\') {
            out += c;
            continue;
        }
        if (++pos >= line.size())
            return std::nullopt;
        const char e = line[pos];
        if (e == '\\' || e == '"') {
            out += e;
        } else if (e == 'u' && pos + 4 < line.size()) {
            const int h1 = hexVal(line[pos + 3]);
            const int h2 = hexVal(line[pos + 4]);
            if (h1 < 0 || h2 < 0)
                return std::nullopt;
            out += static_cast<char>((h1 << 4) | h2);
            pos += 4;
        } else {
            return std::nullopt;
        }
    }
    return std::nullopt;  // unterminated string
}

std::optional<uint64_t>
getHex64(const std::string &line, const char *key)
{
    const std::optional<std::string> s = getStr(line, key);
    if (!s || s->size() != 16)
        return std::nullopt;
    uint64_t v = 0;
    for (const char c : *s) {
        const int d = hexVal(c);
        if (d < 0)
            return std::nullopt;
        v = (v << 4) | static_cast<uint64_t>(d);
    }
    return v;
}

void
appendU64Hex(std::string &out, uint64_t v)
{
    for (int shift = 60; shift >= 0; shift -= 4)
        out += kHexDigits[(v >> shift) & 0xf];
}

std::optional<uint64_t>
takeU64Hex(const std::string &s, size_t &pos)
{
    if (pos + 16 > s.size())
        return std::nullopt;
    uint64_t v = 0;
    for (size_t i = 0; i < 16; ++i) {
        const int d = hexVal(s[pos + i]);
        if (d < 0)
            return std::nullopt;
        v = (v << 4) | static_cast<uint64_t>(d);
    }
    pos += 16;
    return v;
}

/**
 * RunProfile as a flat hex stream of u64 fields (maps are
 * length-prefixed; std::map iteration order is the sort order, so
 * serialization is canonical and two equal profiles serialize to the
 * same bytes).
 */
std::string
profileHex(const profile::RunProfile &p)
{
    std::string out;
    out.reserve((8 + 2 * p.dataReuse.counts.size() +
                 6 * p.branches.sites.size()) * 16);
    appendU64Hex(out, p.lineBytes);
    appendU64Hex(out, p.dataReuse.coldAccesses);
    appendU64Hex(out, p.dataReuse.counts.size());
    for (const auto &[dist, cnt] : p.dataReuse.counts) {
        appendU64Hex(out, dist);
        appendU64Hex(out, cnt);
    }
    appendU64Hex(out, p.branches.dynBranches);
    appendU64Hex(out, p.branches.dynCondBranches);
    appendU64Hex(out, p.branches.mispredicts);
    appendU64Hex(out, p.branches.sites.size());
    for (const auto &[pc, site] : p.branches.sites) {
        appendU64Hex(out, pc);
        appendU64Hex(out, site.taken);
        appendU64Hex(out, site.notTaken);
        appendU64Hex(out, site.transitions);
        appendU64Hex(out, site.mispredicts);
        appendU64Hex(out, (site.isCond ? 1u : 0u) |
                          (site.isIndirect ? 2u : 0u));
    }
    return out;
}

bool
profileFromHex(const std::string &hex, profile::RunProfile &p)
{
    size_t pos = 0;
    const auto take = [&]() { return takeU64Hex(hex, pos); };
    const auto line_bytes = take();
    const auto cold = take();
    const auto ncounts = take();
    if (!line_bytes || !cold || !ncounts)
        return false;
    p.lineBytes = static_cast<uint32_t>(*line_bytes);
    p.dataReuse.coldAccesses = *cold;
    for (uint64_t i = 0; i < *ncounts; ++i) {
        const auto dist = take();
        const auto cnt = take();
        if (!dist || !cnt)
            return false;
        p.dataReuse.counts[*dist] = *cnt;
    }
    const auto dyn = take();
    const auto dyn_cond = take();
    const auto mispred = take();
    const auto nsites = take();
    if (!dyn || !dyn_cond || !mispred || !nsites)
        return false;
    p.branches.dynBranches = *dyn;
    p.branches.dynCondBranches = *dyn_cond;
    p.branches.mispredicts = *mispred;
    for (uint64_t i = 0; i < *nsites; ++i) {
        const auto pc = take();
        const auto taken = take();
        const auto not_taken = take();
        const auto transitions = take();
        const auto site_mispred = take();
        const auto flags = take();
        if (!pc || !taken || !not_taken || !transitions ||
            !site_mispred || !flags) {
            return false;
        }
        profile::BranchSite site;
        site.taken = *taken;
        site.notTaken = *not_taken;
        site.transitions = *transitions;
        site.mispredicts = *site_mispred;
        site.isCond = (*flags & 1) != 0;
        site.isIndirect = (*flags & 2) != 0;
        p.branches.sites[static_cast<uint32_t>(*pc)] = site;
    }
    return pos == hex.size();
}

/** TolStats counters in serialization order (diffTolStats' set). */
struct TolField
{
    const char *key;
    uint64_t tol::TolStats::*member;
};

constexpr TolField kTolFields[] = {
    {"dynIm", &tol::TolStats::dynIm},
    {"dynBbm", &tol::TolStats::dynBbm},
    {"dynSbm", &tol::TolStats::dynSbm},
    {"bbsTranslated", &tol::TolStats::bbsTranslated},
    {"sbsCreated", &tol::TolStats::sbsCreated},
    {"guestInstsTranslatedBb", &tol::TolStats::guestInstsTranslatedBb},
    {"guestInstsTranslatedSb", &tol::TolStats::guestInstsTranslatedSb},
    {"hostInstsEmittedBb", &tol::TolStats::hostInstsEmittedBb},
    {"hostInstsEmittedSb", &tol::TolStats::hostInstsEmittedSb},
    {"dispatchLoops", &tol::TolStats::dispatchLoops},
    {"mapLookups", &tol::TolStats::mapLookups},
    {"mapHits", &tol::TolStats::mapHits},
    {"chainsPatched", &tol::TolStats::chainsPatched},
    {"entryForwards", &tol::TolStats::entryForwards},
    {"ibtcMisses", &tol::TolStats::ibtcMisses},
    {"ibtcFills", &tol::TolStats::ibtcFills},
    {"promotions", &tol::TolStats::promotions},
    {"codeCacheFlushes", &tol::TolStats::codeCacheFlushes},
    {"contextFills", &tol::TolStats::contextFills},
    {"contextSpills", &tol::TolStats::contextSpills},
    {"guestIndirectBranches", &tol::TolStats::guestIndirectBranches},
};

/** Static mode map as sorted (eip, mode) pairs, 10 hex chars each. */
std::string
staticModesHex(const tol::TolStats &ts)
{
    std::vector<std::pair<uint32_t, uint8_t>> pairs(
        ts.staticMode.begin(), ts.staticMode.end());
    std::sort(pairs.begin(), pairs.end());
    std::string out;
    out.reserve(pairs.size() * 10);
    for (const auto &[eip, mode] : pairs)
        out += strprintf("%08x%02x", eip, mode);
    return out;
}

bool
staticModesFromHex(const std::string &hex, tol::TolStats &ts)
{
    if (hex.size() % 10 != 0)
        return false;
    for (size_t i = 0; i < hex.size(); i += 10) {
        uint8_t bytes[5];
        if (!decodeHex(hex.substr(i, 10), bytes, 5))
            return false;
        const uint32_t eip = (uint32_t{bytes[0]} << 24) |
                             (uint32_t{bytes[1]} << 16) |
                             (uint32_t{bytes[2]} << 8) |
                             uint32_t{bytes[3]};
        ts.staticMode[eip] = bytes[4];
    }
    return true;
}

std::string
serializeEntry(const JournalEntry &e)
{
    const sim::RunSnapshot &snap = e.snapshot;
    std::string body = strprintf(
        "{\"job\":%llu,\"workload\":\"%s\",\"fp\":\"%016llx\","
        "\"name\":\"%s\",\"suite\":\"%s\",\"uri\":\"%s\","
        "\"guest_retired\":%llu,\"halted\":%u,\"cycles\":%llu,"
        "\"timing_core\":\"%s\"",
        static_cast<unsigned long long>(e.jobIndex),
        escape(e.workload).c_str(),
        static_cast<unsigned long long>(e.fingerprint),
        escape(e.name).c_str(), escape(e.suite).c_str(),
        escape(e.uri).c_str(),
        static_cast<unsigned long long>(snap.result.guestRetired),
        snap.result.halted ? 1u : 0u,
        static_cast<unsigned long long>(snap.result.cycles),
        escape(snap.timingCore).c_str());
    body += ",\"stats\":\"" + pipeStatsHex(snap.stats) + "\"";
    if (snap.tolOnly)
        body += ",\"tol_only\":\"" + pipeStatsHex(*snap.tolOnly) + "\"";
    if (snap.appOnly)
        body += ",\"app_only\":\"" + pipeStatsHex(*snap.appOnly) + "\"";
    if (snap.tolModule) {
        body += ",\"tol_module\":\"" + pipeStatsHex(*snap.tolModule) +
                "\"";
    }
    if (snap.profile)
        body += ",\"profile\":\"" + profileHex(*snap.profile) + "\"";
    for (const TolField &f : kTolFields) {
        body += strprintf(
            ",\"%s\":%llu", f.key,
            static_cast<unsigned long long>(snap.tolStats.*f.member));
    }
    body += ",\"static_modes\":\"" + staticModesHex(snap.tolStats) +
            "\"";
    return body + strprintf(",\"csum\":\"%016llx\"}",
                            static_cast<unsigned long long>(
                                hashString(body)));
}

std::optional<JournalEntry>
parseEntry(const std::string &line)
{
    // Authenticate before parsing: the checksum covers every byte of
    // the body, so a torn or bit-damaged line cannot half-parse.
    const size_t csum_at = line.rfind(",\"csum\":\"");
    if (csum_at == std::string::npos)
        return std::nullopt;
    const std::string tail = line.substr(csum_at);
    const std::optional<uint64_t> csum = getHex64(tail, "csum");
    if (!csum || *csum != hashString(line.substr(0, csum_at)))
        return std::nullopt;

    JournalEntry e;
    const auto job = getU64(line, "job");
    const auto workload = getStr(line, "workload");
    const auto fp = getHex64(line, "fp");
    const auto name = getStr(line, "name");
    const auto suite = getStr(line, "suite");
    const auto uri = getStr(line, "uri");
    const auto retired = getU64(line, "guest_retired");
    const auto halted = getU64(line, "halted");
    const auto cycles = getU64(line, "cycles");
    const auto core = getStr(line, "timing_core");
    const auto stats = getStr(line, "stats");
    const auto statics = getStr(line, "static_modes");
    if (!job || !workload || !fp || !name || !suite || !uri ||
        !retired || !halted || !cycles || !core || !stats ||
        !statics) {
        return std::nullopt;
    }
    e.jobIndex = *job;
    e.workload = *workload;
    e.fingerprint = *fp;
    e.name = *name;
    e.suite = *suite;
    e.uri = *uri;
    e.snapshot.result.guestRetired = *retired;
    e.snapshot.result.halted = *halted != 0;
    e.snapshot.result.cycles = *cycles;
    e.snapshot.timingCore = *core;
    if (!pipeStatsFromHex(*stats, e.snapshot.stats))
        return std::nullopt;
    const auto blob = [&](const char *key,
                          std::optional<timing::PipeStats> &dst) {
        const auto hex = getStr(line, key);
        if (!hex)
            return true;  // absent is fine
        timing::PipeStats ps;
        if (!pipeStatsFromHex(*hex, ps))
            return false;
        dst = ps;
        return true;
    };
    if (!blob("tol_only", e.snapshot.tolOnly) ||
        !blob("app_only", e.snapshot.appOnly) ||
        !blob("tol_module", e.snapshot.tolModule)) {
        return std::nullopt;
    }
    if (const auto prof_hex = getStr(line, "profile")) {
        profile::RunProfile rp;
        if (!profileFromHex(*prof_hex, rp))
            return std::nullopt;
        e.snapshot.profile = std::move(rp);
    }
    for (const TolField &f : kTolFields) {
        const auto v = getU64(line, f.key);
        if (!v)
            return std::nullopt;
        e.snapshot.tolStats.*f.member = *v;
    }
    if (!staticModesFromHex(*statics, e.snapshot.tolStats))
        return std::nullopt;
    return e;
}

} // namespace

uint64_t
configFingerprint(const sim::MetricsOptions &effective,
                  const std::string &workload, bool requireHalt)
{
    const tol::TolConfig &t = effective.tolConfig;
    const timing::TimingConfig &h = effective.timingConfig;
    std::string dump;
    dump.reserve(1024);
    const auto field = [&dump](const char *key, uint64_t v) {
        dump += strprintf("%s=%llu;", key,
                          static_cast<unsigned long long>(v));
    };
    // The workload string first (length-prefixed so a crafted
    // workload cannot alias into the field dump).
    dump += strprintf("workload[%zu]=", workload.size());
    dump += workload;
    dump += ';';
    field("requireHalt", requireHalt);
    field("guestBudget", effective.guestBudget);
    field("tolOnlyPipe", effective.tolOnlyPipe);
    field("appOnlyPipe", effective.appOnlyPipe);
    field("tolModulePipe", effective.tolModulePipe);
    field("profile", effective.profile);
    // TolConfig, declaration order.
    field("imToBbThreshold", t.imToBbThreshold);
    field("bbToSbThreshold", t.bbToSbThreshold);
    field("maxBbGuestInsts", t.maxBbGuestInsts);
    field("maxSbGuestInsts", t.maxSbGuestInsts);
    dump += strprintf("sbBranchBias=%.17g;", t.sbBranchBias);
    field("sbMinEdgeSamples", t.sbMinEdgeSamples);
    field("sbFollowCalls", t.sbFollowCalls);
    field("enableChaining", t.enableChaining);
    field("enableIbtc", t.enableIbtc);
    field("enableBbmOpts", t.enableBbmOpts);
    field("enableSbmOpts", t.enableSbmOpts);
    field("enableScheduling", t.enableScheduling);
    field("verifyIr", t.verifyIr);
    field("ibtcEntries", t.ibtcEntries);
    field("ibtcWays", t.ibtcWays);
    field("transMapBuckets", t.transMapBuckets);
    field("codeCacheBytes", t.codeCacheBytes);
    field("sbPartitionPercent", t.sbPartitionPercent);
    field("imDecodeAlus", t.imDecodeAlus);
    field("imDispatchOverheadAlus", t.imDispatchOverheadAlus);
    field("bbmDecodeAlus", t.bbmDecodeAlus);
    field("bbmIrGenAlusPerInst", t.bbmIrGenAlusPerInst);
    field("passVisitAlus", t.passVisitAlus);
    field("cseHashAlus", t.cseHashAlus);
    field("regallocAlusPerInterval", t.regallocAlusPerInterval);
    field("schedAlusPerEdge", t.schedAlusPerEdge);
    field("emitAlusPerInst", t.emitAlusPerInst);
    field("lookupHashAlus", t.lookupHashAlus);
    field("chainPatchAlus", t.chainPatchAlus);
    field("ibtcFillAlus", t.ibtcFillAlus);
    // TimingConfig, declaration order.
    field("issueWidth", h.issueWidth);
    field("iqSize", h.iqSize);
    field("eventCore", h.eventCore);
    field("burst", h.burst);
    field("bpHistoryBits", h.bpHistoryBits);
    field("btbEntries", h.btbEntries);
    field("btbWays", h.btbWays);
    field("mispredictPenalty", h.mispredictPenalty);
    const auto cache = [&](const char *key,
                           const timing::CacheGeometry &g) {
        dump += strprintf("%s=%u/%u/%u/%u/%u;", key, g.sizeBytes,
                          g.lineBytes, g.ways, g.hitLatency,
                          g.trueLru ? 1u : 0u);
    };
    cache("l1i", h.l1i);
    cache("l1d", h.l1d);
    cache("l2", h.l2);
    field("memLatency", h.memLatency);
    field("prefetcherEntries", h.prefetcherEntries);
    field("prefetcherEnabled", h.prefetcherEnabled);
    field("tlbL1Entries", h.tlbL1Entries);
    field("tlbL1Ways", h.tlbL1Ways);
    field("tlbL1Latency", h.tlbL1Latency);
    field("tlbL2Entries", h.tlbL2Entries);
    field("tlbL2Ways", h.tlbL2Ways);
    field("tlbL2Latency", h.tlbL2Latency);
    field("tlbWalkLatency", h.tlbWalkLatency);
    field("pageBits", h.pageBits);
    field("intSimpleLatency", h.intSimpleLatency);
    field("intComplexLatency", h.intComplexLatency);
    field("fpSimpleLatency", h.fpSimpleLatency);
    field("fpComplexLatency", h.fpComplexLatency);
    return hashString(dump);
}

Journal::Journal(const std::string &path) : path(path)
{
    struct stat st{};
    const bool fresh = ::stat(path.c_str(), &st) != 0 ||
                       st.st_size == 0;
    file = std::fopen(path.c_str(), "ab");
    if (!file) {
        fatal_kind(ErrKind::Io, "journal: cannot open '%s' for append",
                   path.c_str());
    }
    if (fresh) {
        if (std::fprintf(file,
                         "{\"darco_journal\":1,\"engine\":\"%s\"}\n",
                         kJournalEngineVersion) < 0 ||
            std::fflush(file) != 0) {
            fatal_kind(ErrKind::Io,
                       "journal: cannot write header to '%s': %s",
                       path.c_str(), std::strerror(errno));
        }
    }
}

Journal::~Journal()
{
    if (file)
        std::fclose(file);
}

void
Journal::append(const JournalEntry &entry)
{
    const std::string line = serializeEntry(entry);
    // Flush before reporting the job done: after fflush the bytes
    // are the kernel's problem and survive a SIGKILL of this
    // process. (fsync would also survive a host crash; a campaign
    // journal does not need that durability class.) Every result is
    // checked: a short write or failed flush (ENOSPC, quota, pulled
    // NFS mount) means the entry is NOT durable, and returning
    // normally would let the runner report the job done on the
    // strength of an entry that does not exist — the durability
    // contract this class exists to provide. The failure classifies
    // as Io like every other journal I/O error.
    if (std::fwrite(line.data(), 1, line.size(), file) !=
            line.size() ||
        std::fputc('\n', file) == EOF || std::fflush(file) != 0) {
        fatal_kind(ErrKind::Io,
                   "journal: append to '%s' failed (%s) — entry for "
                   "job %llu is not durable",
                   path.c_str(), std::strerror(errno),
                   static_cast<unsigned long long>(entry.jobIndex));
    }
    // Kill-after-Nth-append fault point (the kill-and-resume gate):
    // fires `count` times, dies on the last one — i.e. after the Nth
    // append has been made durable.
    if (faultinject::fire(faultinject::Point::JournalKill) &&
        !faultinject::pending(faultinject::Point::JournalKill)) {
        std::raise(SIGKILL);
    }
}

JournalLoad
loadJournal(const std::string &path)
{
    JournalLoad load;
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return load;
    std::string data;
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, got);
    std::fclose(f);

    size_t pos = 0;
    bool first = true;
    while (pos < data.size()) {
        // A file with no trailing newline ends in a torn line; it is
        // parsed like any other and fails its checksum.
        size_t end = data.find('\n', pos);
        if (end == std::string::npos)
            end = data.size();
        const std::string line = data.substr(pos, end - pos);
        pos = end + 1;
        if (line.empty())
            continue;
        if (first) {
            first = false;
            if (line.find("\"darco_journal\":") != std::string::npos) {
                if (const auto engine = getStr(line, "engine"))
                    load.engine = *engine;
                continue;
            }
            // No header: fall through and try it as an entry.
        }
        if (std::optional<JournalEntry> e = parseEntry(line))
            load.entries.push_back(std::move(*e));
        else
            ++load.skippedLines;
    }
    return load;
}

} // namespace darco::runner
