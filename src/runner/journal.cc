#include "runner/journal.hh"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <optional>

#include "common/faultinject.hh"
#include "common/logging.hh"
#include "runner/snapshot_codec.hh"

#include <csignal>

namespace darco::runner {

namespace {

std::string
serializeEntry(const JournalEntry &e)
{
    std::string body = strprintf(
        "{\"job\":%llu,\"workload\":\"%s\",\"fp\":\"%016llx\","
        "\"name\":\"%s\",\"suite\":\"%s\",\"uri\":\"%s\"",
        static_cast<unsigned long long>(e.jobIndex),
        codec::escape(e.workload).c_str(),
        static_cast<unsigned long long>(e.fingerprint),
        codec::escape(e.name).c_str(), codec::escape(e.suite).c_str(),
        codec::escape(e.uri).c_str());
    codec::appendSnapshotFields(body, e.snapshot);
    return codec::sealLine(body);
}

std::optional<JournalEntry>
parseEntry(const std::string &line)
{
    if (!codec::checksummedBody(line))
        return std::nullopt;

    JournalEntry e;
    const auto job = codec::getU64(line, "job");
    const auto workload = codec::getStr(line, "workload");
    const auto fp = codec::getHex64(line, "fp");
    const auto name = codec::getStr(line, "name");
    const auto suite = codec::getStr(line, "suite");
    const auto uri = codec::getStr(line, "uri");
    if (!job || !workload || !fp || !name || !suite || !uri)
        return std::nullopt;
    e.jobIndex = *job;
    e.workload = *workload;
    e.fingerprint = *fp;
    e.name = *name;
    e.suite = *suite;
    e.uri = *uri;
    if (!codec::parseSnapshotFields(line, e.snapshot))
        return std::nullopt;
    return e;
}

} // namespace

uint64_t
configFingerprint(const sim::MetricsOptions &effective,
                  const std::string &workload, bool requireHalt)
{
    const tol::TolConfig &t = effective.tolConfig;
    const timing::TimingConfig &h = effective.timingConfig;
    std::string dump;
    dump.reserve(1024);
    const auto field = [&dump](const char *key, uint64_t v) {
        dump += strprintf("%s=%llu;", key,
                          static_cast<unsigned long long>(v));
    };
    // The workload string first (length-prefixed so a crafted
    // workload cannot alias into the field dump).
    dump += strprintf("workload[%zu]=", workload.size());
    dump += workload;
    dump += ';';
    field("requireHalt", requireHalt);
    field("guestBudget", effective.guestBudget);
    field("tolOnlyPipe", effective.tolOnlyPipe);
    field("appOnlyPipe", effective.appOnlyPipe);
    field("tolModulePipe", effective.tolModulePipe);
    field("profile", effective.profile);
    // TolConfig, declaration order.
    field("imToBbThreshold", t.imToBbThreshold);
    field("bbToSbThreshold", t.bbToSbThreshold);
    field("maxBbGuestInsts", t.maxBbGuestInsts);
    field("maxSbGuestInsts", t.maxSbGuestInsts);
    dump += strprintf("sbBranchBias=%.17g;", t.sbBranchBias);
    field("sbMinEdgeSamples", t.sbMinEdgeSamples);
    field("sbFollowCalls", t.sbFollowCalls);
    field("enableChaining", t.enableChaining);
    field("enableIbtc", t.enableIbtc);
    field("enableBbmOpts", t.enableBbmOpts);
    field("enableSbmOpts", t.enableSbmOpts);
    field("enableScheduling", t.enableScheduling);
    field("verifyIr", t.verifyIr);
    field("ibtcEntries", t.ibtcEntries);
    field("ibtcWays", t.ibtcWays);
    field("transMapBuckets", t.transMapBuckets);
    field("codeCacheBytes", t.codeCacheBytes);
    field("sbPartitionPercent", t.sbPartitionPercent);
    field("imDecodeAlus", t.imDecodeAlus);
    field("imDispatchOverheadAlus", t.imDispatchOverheadAlus);
    field("bbmDecodeAlus", t.bbmDecodeAlus);
    field("bbmIrGenAlusPerInst", t.bbmIrGenAlusPerInst);
    field("passVisitAlus", t.passVisitAlus);
    field("cseHashAlus", t.cseHashAlus);
    field("regallocAlusPerInterval", t.regallocAlusPerInterval);
    field("schedAlusPerEdge", t.schedAlusPerEdge);
    field("emitAlusPerInst", t.emitAlusPerInst);
    field("lookupHashAlus", t.lookupHashAlus);
    field("chainPatchAlus", t.chainPatchAlus);
    field("ibtcFillAlus", t.ibtcFillAlus);
    // TimingConfig, declaration order.
    field("issueWidth", h.issueWidth);
    field("iqSize", h.iqSize);
    field("eventCore", h.eventCore);
    field("burst", h.burst);
    field("bpHistoryBits", h.bpHistoryBits);
    field("btbEntries", h.btbEntries);
    field("btbWays", h.btbWays);
    field("mispredictPenalty", h.mispredictPenalty);
    const auto cache = [&](const char *key,
                           const timing::CacheGeometry &g) {
        dump += strprintf("%s=%u/%u/%u/%u/%u;", key, g.sizeBytes,
                          g.lineBytes, g.ways, g.hitLatency,
                          g.trueLru ? 1u : 0u);
    };
    cache("l1i", h.l1i);
    cache("l1d", h.l1d);
    cache("l2", h.l2);
    field("memLatency", h.memLatency);
    field("prefetcherEntries", h.prefetcherEntries);
    field("prefetcherEnabled", h.prefetcherEnabled);
    field("tlbL1Entries", h.tlbL1Entries);
    field("tlbL1Ways", h.tlbL1Ways);
    field("tlbL1Latency", h.tlbL1Latency);
    field("tlbL2Entries", h.tlbL2Entries);
    field("tlbL2Ways", h.tlbL2Ways);
    field("tlbL2Latency", h.tlbL2Latency);
    field("tlbWalkLatency", h.tlbWalkLatency);
    field("pageBits", h.pageBits);
    field("intSimpleLatency", h.intSimpleLatency);
    field("intComplexLatency", h.intComplexLatency);
    field("fpSimpleLatency", h.fpSimpleLatency);
    field("fpComplexLatency", h.fpComplexLatency);
    return codec::hashString(dump);
}

Journal::Journal(const std::string &path) : path(path)
{
    struct stat st{};
    const bool fresh = ::stat(path.c_str(), &st) != 0 ||
                       st.st_size == 0;
    file = std::fopen(path.c_str(), "ab");
    if (!file) {
        fatal_kind(ErrKind::Io, "journal: cannot open '%s' for append",
                   path.c_str());
    }
    if (fresh) {
        if (std::fprintf(file,
                         "{\"darco_journal\":1,\"engine\":\"%s\"}\n",
                         kJournalEngineVersion) < 0 ||
            std::fflush(file) != 0) {
            fatal_kind(ErrKind::Io,
                       "journal: cannot write header to '%s': %s",
                       path.c_str(), std::strerror(errno));
        }
    }
}

Journal::~Journal()
{
    if (file)
        std::fclose(file);
}

void
Journal::append(const JournalEntry &entry)
{
    const std::string line = serializeEntry(entry);
    // Flush before reporting the job done: after fflush the bytes
    // are the kernel's problem and survive a SIGKILL of this
    // process. (fsync would also survive a host crash; a campaign
    // journal does not need that durability class.) Every result is
    // checked: a short write or failed flush (ENOSPC, quota, pulled
    // NFS mount) means the entry is NOT durable, and returning
    // normally would let the runner report the job done on the
    // strength of an entry that does not exist — the durability
    // contract this class exists to provide. The failure classifies
    // as Io like every other journal I/O error.
    if (std::fwrite(line.data(), 1, line.size(), file) !=
            line.size() ||
        std::fputc('\n', file) == EOF || std::fflush(file) != 0) {
        fatal_kind(ErrKind::Io,
                   "journal: append to '%s' failed (%s) — entry for "
                   "job %llu is not durable",
                   path.c_str(), std::strerror(errno),
                   static_cast<unsigned long long>(entry.jobIndex));
    }
    // Kill-after-Nth-append fault point (the kill-and-resume gate):
    // fires `count` times, dies on the last one — i.e. after the Nth
    // append has been made durable.
    if (faultinject::fire(faultinject::Point::JournalKill) &&
        !faultinject::pending(faultinject::Point::JournalKill)) {
        std::raise(SIGKILL);
    }
}

JournalLoad
loadJournal(const std::string &path)
{
    JournalLoad load;
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return load;
    std::string data;
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, got);
    std::fclose(f);

    size_t pos = 0;
    bool first = true;
    while (pos < data.size()) {
        // A file with no trailing newline ends in a torn line; it is
        // parsed like any other and fails its checksum.
        size_t end = data.find('\n', pos);
        if (end == std::string::npos)
            end = data.size();
        const std::string line = data.substr(pos, end - pos);
        pos = end + 1;
        if (line.empty())
            continue;
        if (first) {
            first = false;
            if (line.find("\"darco_journal\":") != std::string::npos) {
                if (const auto engine = codec::getStr(line, "engine"))
                    load.engine = *engine;
                continue;
            }
            // No header: fall through and try it as an entry.
        }
        if (std::optional<JournalEntry> e = parseEntry(line))
            load.entries.push_back(std::move(*e));
        else
            ++load.skippedLines;
    }
    return load;
}

} // namespace darco::runner
