/**
 * @file
 * Top-level simulation configuration: the TOL configuration, the host
 * microarchitecture (Table I), and controller options.
 */

#ifndef DARCO_SIM_CONFIG_HH
#define DARCO_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/cancel.hh"
#include "timing/config.hh"
#include "tol/config.hh"

namespace darco::sim {

struct SimConfig
{
    tol::TolConfig tol;
    timing::TimingConfig timing;

    /** Guest instructions to simulate (stops at HALT if earlier). */
    uint64_t guestBudget = 2'000'000;

    /**
     * Co-simulation: run the authoritative x86 component in lockstep
     * and compare architectural state at every commit (Figure 2's
     * state checker). Costs host time; enabled in tests, off in
     * benchmark sweeps.
     */
    bool cosim = false;
    /** panic() on the first co-simulation mismatch. */
    bool cosimStrict = true;

    /**
     * When non-empty, System snapshots the loaded workload to this
     * binary trace file (docs/traces.md): the program image, the run
     * recipe (budget + promotion thresholds), and — once run()
     * finishes — the run's determinism pins. The trace replays
     * bit-identically through `source://trace/<file>`.
     */
    std::string captureTracePath;

    /**
     * Cooperative cancellation (nullptr = never cancelled; the
     * default, and the only legal value for perf-baseline runs —
     * see bench/check_perf.py). Not part of the determinism key: it
     * changes when a run stops, never what the completed work
     * measured. The token must outlive System::run().
     */
    const common::CancelToken *cancel = nullptr;

    /**
     * Collect characterization profiles (reuse-distance histogram +
     * branch profile; src/profile/) from the record stream. Off by
     * default: no collector sink is registered, so the hot path is
     * byte-for-byte the unprofiled one — perf baselines must keep it
     * off (bench/check_perf.py asserts `"profile":"off"`).
     */
    bool profile = false;

    /** TOL-software-stream isolated pipeline (Figures 10/11). */
    bool tolOnlyPipe = false;
    /** Application-stream isolated pipeline (Figures 10/11). */
    bool appOnlyPipe = false;
    /** TOL-by-module pipeline incl. instrumentation (Figure 8). */
    bool tolModulePipe = false;
};

} // namespace darco::sim

#endif // DARCO_SIM_CONFIG_HH
