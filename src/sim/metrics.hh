/**
 * @file
 * Per-benchmark metric collection: everything Figures 5-11 need from
 * one simulation (plus the isolated-pipeline quantities for the
 * interaction study).
 */

#ifndef DARCO_SIM_METRICS_HH
#define DARCO_SIM_METRICS_HH

#include <optional>
#include <string>

#include "profile/profile.hh"
#include "sim/system.hh"
#include "workloads/params.hh"
#include "workloads/source.hh"

namespace darco::sim {

struct BenchMetrics
{
    std::string name;
    std::string suite;

    uint64_t guestRetired = 0;
    bool halted = false;
    uint64_t cycles = 0;

    // ----- Figure 5: code distribution ---------------------------------
    uint64_t staticIm = 0, staticBbm = 0, staticSbm = 0;
    uint64_t dynIm = 0, dynBbm = 0, dynSbm = 0;

    // ----- Figure 6: execution-time breakdown -----------------------------
    double tolCycles = 0, appCycles = 0;
    double dynStaticRatio = 0;
    uint64_t sbInvocations = 0;

    // ----- Figure 7: TOL module breakdown ---------------------------------
    /** Cycles per module (index = timing::Module). */
    double moduleCycles[timing::kNumModules] = {};
    uint64_t guestIndirect = 0;

    // ----- Figure 8: TOL performance (TOL-only pipeline) -----------------
    bool haveTolOnly = false;
    double tolIpc = 0;
    double tolDmissRate = 0;
    double tolImissRate = 0;
    double tolBpMissRate = 0;

    // ----- Figure 9: bucket breakdown (combined pipeline) ----------------
    /**
     * Fraction of total cycles: [bucket][0=app,1=tol] (by module),
     * derived from the pipeline's exact fixed-point cycle units
     * (PipeStats::bucketUnits) with one division per cell.
     */
    double bucketFrac[timing::kNumBuckets][2] = {};
    /** Cycles by stream source: [bucket][0=TOL software,1=region]. */
    double bucketSrc[timing::kNumBuckets][2] = {};

    // ----- Figures 10/11: interaction ---------------------------------
    bool haveIsolation = false;
    uint64_t tolOnlyCycles = 0;
    uint64_t appOnlyCycles = 0;
    /** Per-bucket cycles in the isolated runs. */
    double tolOnlyBucket[timing::kNumBuckets] = {};
    double appOnlyBucket[timing::kNumBuckets] = {};

    // ----- Characterization profiles (MetricsOptions::profile) -----------
    /** Summary scalars of the RunSnapshot's full RunProfile. */
    bool haveProfile = false;
    uint64_t profDataAccesses = 0;    ///< profiled LD/ST accesses
    uint64_t profDistinctLines = 0;   ///< data footprint in lines
    double profMedianReuse = 0;       ///< median finite reuse distance
    double profBranchEntropy = 0;     ///< weighted bits/branch
    double profTransitionRate = 0;    ///< conditional direction churn
    double profMispredictRate = 0;    ///< replica-predictor rate

    // Derived helpers --------------------------------------------------
    double tolOverheadFrac() const
    {
        const double total = tolCycles + appCycles;
        return total > 0 ? tolCycles / total : 0;
    }

    uint64_t staticTotal() const
    {
        return staticIm + staticBbm + staticSbm;
    }

    uint64_t dynTotal() const { return dynIm + dynBbm + dynSbm; }

    /**
     * Figures 10/11 use the *source-based* split (translated-region
     * stream vs TOL-software stream) so the combined attribution is
     * directly comparable with the isolated instances (see
     * timing/record.hh).
     */
    double
    appSrcCycles() const
    {
        double total = 0;
        for (unsigned b = 0; b < timing::kNumBuckets; ++b)
            total += bucketSrc[b][1];
        return total;
    }
    double
    tolSrcCycles() const
    {
        double total = 0;
        for (unsigned b = 0; b < timing::kNumBuckets; ++b)
            total += bucketSrc[b][0];
        return total;
    }

    /** Figure 10: relative cycles without interaction, per side. */
    double
    relTolWithout() const
    {
        const double with_i = tolSrcCycles();
        return with_i > 0
            ? static_cast<double>(tolOnlyCycles) / with_i : 0;
    }
    double
    relAppWithout() const
    {
        const double with_i = appSrcCycles();
        return with_i > 0
            ? static_cast<double>(appOnlyCycles) / with_i : 0;
    }

    /** Overall interaction degradation, split by side (of total). */
    double
    tolDegradation() const
    {
        return cycles ? (tolSrcCycles() - tolOnlyCycles) /
                        static_cast<double>(cycles) : 0;
    }
    double
    appDegradation() const
    {
        return cycles ? (appSrcCycles() - appOnlyCycles) /
                        static_cast<double>(cycles) : 0;
    }

    /** Figure 11: potential improvement per bucket (of total time). */
    double
    potentialTol(timing::Bucket b) const
    {
        const double with_i = bucketSrc[static_cast<unsigned>(b)][0];
        return cycles
            ? (with_i - tolOnlyBucket[static_cast<unsigned>(b)]) /
              static_cast<double>(cycles)
            : 0;
    }
    double
    potentialApp(timing::Bucket b) const
    {
        const double with_i = bucketSrc[static_cast<unsigned>(b)][1];
        return cycles
            ? (with_i - appOnlyBucket[static_cast<unsigned>(b)]) /
              static_cast<double>(cycles)
            : 0;
    }
};

struct MetricsOptions
{
    uint64_t guestBudget = 2'000'000;
    bool tolOnlyPipe = false;
    bool appOnlyPipe = false;
    /** Module-filtered TOL pipeline for Figure 8 characteristics. */
    bool tolModulePipe = false;
    /** Collect characterization profiles (SimConfig::profile
     *  passthrough; docs/metrics.md §6). Off in perf baselines. */
    bool profile = false;
    /** Optional overrides applied to the default TolConfig. */
    tol::TolConfig tolConfig;
    timing::TimingConfig timingConfig;
    /** When non-empty, snapshot the run to this binary trace file
     *  (SimConfig::captureTracePath passthrough; docs/traces.md). */
    std::string captureTracePath;
    /** Cooperative cancellation (SimConfig::cancel passthrough;
     *  nullptr = never cancelled). Runtime wiring, not a determinism
     *  input — excluded from campaign-journal fingerprints. */
    const common::CancelToken *cancel = nullptr;
};

/**
 * Budget-scaled BB->SB promotion threshold.
 *
 * The paper simulates 4B guest instructions with BB/SBth = 10000.
 * Reproduction runs are shorter; keeping the absolute threshold would
 * shift the entire transitional/steady-state balance (Fig 5b's ~97%
 * SBM share needs hot code to spend most of the run promoted). We
 * scale the threshold linearly with the budget and clamp it to
 * [300, 10000], so it reproduces the paper's value exactly at the
 * paper's budget while keeping the IM->BBM->SBM staging meaningful at
 * laptop-scale budgets. Documented in DESIGN.md and EXPERIMENTS.md.
 */
inline uint32_t
scaledSbThreshold(uint64_t guest_budget)
{
    const uint64_t linear = guest_budget / 400000;  // 10000 at 4B
    if (linear < 300)
        return 300;
    if (linear > 10000)
        return 10000;
    return static_cast<uint32_t>(linear);
}

/**
 * Re-apply a trace workload's capture-time recipe (budget +
 * promotion thresholds) so a replay reproduces the captured
 * functional execution bit-identically; no-op for workloads that
 * did not come from a trace. The single point of truth for which
 * TraceMeta fields constitute the recipe — every harness goes
 * through one of these two overloads, so a recipe field added in a
 * future trace minor version is applied everywhere at once. The
 * host microarchitecture is deliberately untouched: traces exist to
 * compare one workload across timing configs (docs/traces.md §4).
 */
inline void
applyCaptureRecipe(SimConfig &cfg,
                   const workloads::Workload &workload)
{
    if (!workload.capturedMeta)
        return;
    cfg.guestBudget = workload.capturedMeta->guestBudget;
    cfg.tol.imToBbThreshold = workload.capturedMeta->imToBbThreshold;
    cfg.tol.bbToSbThreshold = workload.capturedMeta->bbToSbThreshold;
}

inline void
applyCaptureRecipe(MetricsOptions &options,
                   const workloads::Workload &workload)
{
    if (!workload.capturedMeta)
        return;
    options.guestBudget = workload.capturedMeta->guestBudget;
    options.tolConfig.imToBbThreshold =
        workload.capturedMeta->imToBbThreshold;
    options.tolConfig.bbToSbThreshold =
        workload.capturedMeta->bbToSbThreshold;
}

/**
 * The one MetricsOptions -> SimConfig translation: runWorkload,
 * snapshotRun and runner::BatchRunner must not diverge on which
 * options take effect (parallel and serial sweeps have to build
 * bit-identical Systems from the same options).
 */
SimConfig configFromOptions(const MetricsOptions &options);

/**
 * The inverse translation, for drivers that parse into a SimConfig
 * but execute through the options-based batch path. Kept next to
 * configFromOptions so a field added to one cannot be forgotten in
 * the other: optionsFromConfig(configFromOptions(o)) == o for every
 * MetricsOptions field, and configFromOptions(optionsFromConfig(c))
 * == c for every field except cosim/cosimStrict (batch execution
 * never co-simulates).
 */
MetricsOptions optionsFromConfig(const SimConfig &cfg);

/**
 * Run one resolved workload — whatever source it came from — and
 * collect all figure metrics. Trace-sourced workloads replay their
 * captured program image; apply the capture recipe to @p options
 * first (applyCaptureRecipe) for bit-identical replay.
 */
BenchMetrics runWorkload(const workloads::Workload &workload,
                         const MetricsOptions &options);

/**
 * Raw outcome of one run: the result plus full stats snapshots.
 * This is the round-trip gates' currency (tests/
 * test_trace_roundtrip.cc, bench/trace_roundtrip.cc): everything
 * needed to prove two runs bit-identical via timing::diffStats and
 * tol::diffTolStats — and, since every figure metric is a pure
 * function of it (collectMetrics below), everything the campaign
 * journal needs to reconstruct a completed job without re-running it
 * (runner/journal.hh).
 */
struct RunSnapshot
{
    SystemResult result;
    timing::PipeStats stats;
    tol::TolStats tolStats;
    /** Isolated/filtered pipeline instances, when enabled (Figures
     *  8/10/11); absent otherwise. */
    std::optional<timing::PipeStats> tolOnly;
    std::optional<timing::PipeStats> appOnly;
    std::optional<timing::PipeStats> tolModule;
    /** Characterization profile, when MetricsOptions::profile was on
     *  (docs/metrics.md §6); compared with profile::diffProfiles. */
    std::optional<profile::RunProfile> profile;
    /** Core that advanced simulated time ("event" / "reference"),
     *  same encoding as trace::TracePins::timingCore. */
    std::string timingCore;
};

/** Snapshot everything a finished System run measured. */
RunSnapshot snapshotFromSystem(const System &sys,
                               const SystemResult &res);

/**
 * Derive the full figure-metrics record from a run snapshot. A pure
 * function of the snapshot — no live System required — so a job
 * replayed from the campaign journal yields bit-identical metrics to
 * the run that produced the snapshot.
 */
BenchMetrics collectMetrics(const RunSnapshot &snap,
                            const std::string &name,
                            const std::string &suite);

/**
 * Derive the full figure-metrics record from a finished System run.
 * Shared by runWorkload and the batch runner so one System execution
 * can yield both a BenchMetrics and a RunSnapshot without running
 * the workload twice.
 */
BenchMetrics collectMetrics(const System &sys,
                            const SystemResult &res,
                            const std::string &name,
                            const std::string &suite);

/**
 * One System run of @p workload under the default configuration
 * plus @p options overrides and the workload's capture recipe (when
 * it has one); @p options.captureTracePath captures as usual.
 */
RunSnapshot snapshotRun(const workloads::Workload &workload,
                        const MetricsOptions &options);

/** Run one synthetic benchmark (runWorkload over the builder). */
BenchMetrics runBenchmark(const workloads::BenchParams &params,
                          const MetricsOptions &options);

/** Average metrics over a set (arithmetic mean of fractions). */
BenchMetrics averageMetrics(const std::vector<BenchMetrics> &all,
                            const std::string &label);

} // namespace darco::sim

#endif // DARCO_SIM_METRICS_HH
