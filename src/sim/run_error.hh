/**
 * @file
 * Structured failure taxonomy for batch-executed simulations.
 *
 * Every engine failure path reachable from a batch job maps into one
 * of seven classes (docs/robustness.md has the full table):
 *
 *   class            transient  retried  typical producer
 *   BadWorkload      no         no       unknown URI / benchmark
 *   TraceCorrupt     no         no       DTRC structural/CSUM failure
 *   GuestFault       no         no       undecodable guest program
 *   BudgetExhausted  no         no       requireHalt && !halted
 *   Timeout          yes        yes      watchdog cancellation
 *   IoTransient      yes        yes      trace-file open/read error
 *   Internal         no         no       any unclassified fatal()
 *
 * Classification never matches message text: classified fatal sites
 * attach a common::ErrKind (fatal_kind) that the runner maps here;
 * Timeout and BudgetExhausted are produced structurally from the run
 * result. An unclassified fatal() deliberately lands in Internal —
 * permanent, never retried — because retrying an unknown failure is
 * how campaigns silently burn a night of compute.
 */

#ifndef DARCO_SIM_RUN_ERROR_HH
#define DARCO_SIM_RUN_ERROR_HH

#include <string>

#include "common/logging.hh"

namespace darco::sim {

enum class RunErrorClass : uint8_t {
    None,             ///< no error (JobResult::ok)
    BadWorkload,
    TraceCorrupt,
    GuestFault,
    BudgetExhausted,
    Timeout,
    IoTransient,
    Internal,
};

/** Stable class name ("TraceCorrupt", ...; "None" for None). */
const char *runErrorClassName(RunErrorClass cls);

/** Inverse of runErrorClassName; None for an unknown name. */
RunErrorClass runErrorClassFromName(const std::string &name);

/** One classified failure: what failed, where, and whether a
 *  from-scratch re-run could plausibly succeed. */
struct RunError
{
    RunErrorClass cls = RunErrorClass::None;
    std::string uri;       ///< workload URI of the failing job
    std::string context;   ///< human-readable detail (fatal message,
                           ///< pin diff, watchdog report)

    /** Transient failures are retried with backoff; permanent ones
     *  fail the job on the first attempt. */
    bool
    transient() const
    {
        return cls == RunErrorClass::Timeout ||
               cls == RunErrorClass::IoTransient;
    }

    const char *name() const { return runErrorClassName(cls); }

    /** "Class (transient|permanent): context" — the JobResult::error
     *  rendering. */
    std::string describe() const;
};

/** Map a classified fatal (the ScopedFatalThrow seam) into the
 *  taxonomy; ErrKind::Unclassified lands in Internal. */
RunError runErrorFromFatal(const FatalError &e, const std::string &uri);

} // namespace darco::sim

#endif // DARCO_SIM_RUN_ERROR_HH
