/**
 * @file
 * The DARCO-style system controller (Figure 2): wires the x86
 * component (authoritative emulator + its own memory), the co-design
 * component (TOL runtime over the host memory), the timing
 * simulator instances (combined + optional TOL-only / APP-only
 * isolation instances fed from the same functional pass), and the
 * state checker.
 */

#ifndef DARCO_SIM_SYSTEM_HH
#define DARCO_SIM_SYSTEM_HH

#include <memory>
#include <string>

#include "guest/emulator.hh"
#include "profile/guest_branch.hh"
#include "profile/profile.hh"
#include "sim/config.hh"
#include "sim/state_checker.hh"
#include "timing/pipeline.hh"
#include "tol/runtime.hh"
#include "trace/trace.hh"
#include "workloads/source.hh"

namespace darco::sim {

/** Outcome of one System::run (docs/metrics.md). */
struct SystemResult
{
    uint64_t guestRetired = 0;      ///< guest instructions executed
    bool halted = false;            ///< guest reached HALT in budget
    uint64_t cycles = 0;            ///< combined-pipeline cycles
    std::string memoryDiff;         ///< co-simulation memory check
    /** Stopped early by SimConfig::cancel: every other field still
     *  exactly accounts the work that completed (partial metrics). */
    bool cancelled = false;
};

class System
{
  public:
    explicit System(const SimConfig &config);

    /** Load a guest program into both components. */
    void load(const guest::Program &program);

    /**
     * Load a resolved workload: same as load(Program), but the
     * workload's identity (name, suite, seed) flows into the capture
     * metadata when SimConfig::captureTracePath is set.
     */
    void load(const workloads::Workload &workload);

    /** Run to the budget (or HALT), then drain the pipelines. */
    SystemResult run();

    /** TOL activity counters (modes, translations, services). */
    const tol::TolStats &tolStats() const { return runtime->stats(); }
    /** The unfiltered pipeline's metrics (Figures 6/7/9). */
    const timing::PipeStats &combinedStats() const
    {
        return combined->stats();
    }
    /**
     * The core that actually advanced simulated time, so harnesses
     * can record it next to the measurements (a silent core switch
     * invalidates perf comparisons; see bench/check_perf.py).
     */
    timing::Pipeline::Engine timingEngine() const
    {
        return combined->engine();
    }
    /** Whether the combined pipeline's burst dispatcher was armed
     *  (TimingConfig::burst read back from the live instance). */
    bool timingBurstEnabled() const
    {
        return combined->burstDispatchEnabled();
    }
    /** TOL-software isolated pipeline, if enabled (Figures 10/11). */
    const timing::PipeStats *tolOnlyStats() const
    {
        return tolOnly ? &tolOnly->stats() : nullptr;
    }
    /** Application isolated pipeline, if enabled (Figures 10/11). */
    const timing::PipeStats *appOnlyStats() const
    {
        return appOnly ? &appOnly->stats() : nullptr;
    }
    /** TOL-by-module pipeline, if enabled (Figure 8). */
    const timing::PipeStats *tolModuleStats() const
    {
        return tolModule ? &tolModule->stats() : nullptr;
    }
    /** Characterization collector, if enabled (SimConfig::profile). */
    const profile::Collector *profileCollector() const
    {
        return profiler.get();
    }
    /**
     * Guest-level dynamic branch profile, collected from the
     * authoritative emulator's branch stream. Needs both
     * SimConfig::profile and SimConfig::cosim (the emulator only
     * replays the full instruction stream under co-simulation);
     * nullptr otherwise. Input to the static-CFG cross-checks
     * (src/analysis/cfg.hh).
     */
    const profile::GuestBranchProfile *guestBranchProfile() const
    {
        return guestBranches ? &guestBranches->profile() : nullptr;
    }
    /** Co-simulation state checker (nullptr when cosim is off). */
    const StateChecker *checker() const { return stateChecker.get(); }
    /** Architectural guest state of the co-design component. */
    const guest::State &guestState() const
    {
        return runtime->guestState();
    }
    /** The TOL runtime (for threshold/introspection access). */
    tol::Runtime &tolRuntime() { return *runtime; }
    /** Host physical memory of the co-design component. */
    host::Memory &hostMemory() { return hostMem; }
    /** The authoritative emulator's guest memory. */
    guest::Memory &authMemory() { return authMem; }

  private:
    void loadIdentified(const guest::Program &program,
                        const std::string &name,
                        const std::string &suite, uint64_t seed);
    void writeCapturedTrace(const SystemResult &result);

    SimConfig cfg;

    /** Pending capture (captureTracePath set): filled at load(),
     *  pinned and written at the end of run(). */
    std::unique_ptr<trace::TraceFile> capture;

    host::Memory hostMem;
    guest::Memory authMem;
    std::unique_ptr<guest::Emulator> authEmu;

    timing::RecordFanout fanout;
    std::unique_ptr<timing::Pipeline> combined;
    std::unique_ptr<timing::Pipeline> tolOnly;
    std::unique_ptr<timing::Pipeline> appOnly;
    std::unique_ptr<timing::Pipeline> tolModule;
    std::unique_ptr<profile::Collector> profiler;

    std::unique_ptr<tol::Runtime> runtime;
    std::unique_ptr<StateChecker> stateChecker;
    std::unique_ptr<profile::GuestBranchCollector> guestBranches;

    bool loaded = false;
    bool ran = false;
};

} // namespace darco::sim

#endif // DARCO_SIM_SYSTEM_HH
