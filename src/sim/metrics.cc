#include "sim/metrics.hh"

#include "common/logging.hh"

namespace darco::sim {

SimConfig
configFromOptions(const MetricsOptions &options)
{
    SimConfig cfg;
    cfg.tol = options.tolConfig;
    cfg.timing = options.timingConfig;
    cfg.guestBudget = options.guestBudget;
    cfg.cosim = false;
    cfg.tolOnlyPipe = options.tolOnlyPipe;
    cfg.appOnlyPipe = options.appOnlyPipe;
    cfg.tolModulePipe = options.tolModulePipe;
    cfg.profile = options.profile;
    cfg.captureTracePath = options.captureTracePath;
    cfg.cancel = options.cancel;
    return cfg;
}

MetricsOptions
optionsFromConfig(const SimConfig &cfg)
{
    MetricsOptions options;
    options.tolConfig = cfg.tol;
    options.timingConfig = cfg.timing;
    options.guestBudget = cfg.guestBudget;
    options.tolOnlyPipe = cfg.tolOnlyPipe;
    options.appOnlyPipe = cfg.appOnlyPipe;
    options.tolModulePipe = cfg.tolModulePipe;
    options.profile = cfg.profile;
    options.captureTracePath = cfg.captureTracePath;
    options.cancel = cfg.cancel;
    return options;
}

BenchMetrics
runWorkload(const workloads::Workload &workload,
            const MetricsOptions &options)
{
    const SimConfig cfg = configFromOptions(options);

    System sys(cfg);
    sys.load(workload);
    const SystemResult res = sys.run();
    return collectMetrics(sys, res, workload.name, workload.suite);
}

RunSnapshot
snapshotFromSystem(const System &sys, const SystemResult &res)
{
    RunSnapshot snap;
    snap.result = res;
    snap.stats = sys.combinedStats();
    snap.tolStats = sys.tolStats();
    if (const timing::PipeStats *tp = sys.tolOnlyStats())
        snap.tolOnly = *tp;
    if (const timing::PipeStats *ap = sys.appOnlyStats())
        snap.appOnly = *ap;
    if (const timing::PipeStats *tm = sys.tolModuleStats())
        snap.tolModule = *tm;
    if (const profile::Collector *pc = sys.profileCollector())
        snap.profile = pc->profile();
    snap.timingCore =
        sys.timingEngine() == timing::Pipeline::Engine::EventDriven
            ? "event" : "reference";
    return snap;
}

BenchMetrics
collectMetrics(const RunSnapshot &snap, const std::string &name,
               const std::string &suite)
{
    BenchMetrics m;
    m.name = name;
    m.suite = suite;
    m.guestRetired = snap.result.guestRetired;
    m.halted = snap.result.halted;
    m.cycles = snap.result.cycles;

    const tol::TolStats &ts = snap.tolStats;
    ts.staticCounts(m.staticIm, m.staticBbm, m.staticSbm);
    m.dynIm = ts.dynIm;
    m.dynBbm = ts.dynBbm;
    m.dynSbm = ts.dynSbm;
    m.sbInvocations = ts.sbsCreated;
    m.guestIndirect = ts.guestIndirectBranches;
    m.dynStaticRatio = m.staticTotal()
        ? static_cast<double>(m.dynTotal()) /
          static_cast<double>(m.staticTotal())
        : 0;

    const timing::PipeStats &ps = snap.stats;
    m.tolCycles = ps.tolCycles();
    m.appCycles = ps.appCycles();
    for (unsigned mod = 0; mod < timing::kNumModules; ++mod) {
        m.moduleCycles[mod] =
            ps.moduleCycles(static_cast<timing::Module>(mod));
    }
    // Fractions are derived from the exact integer units with one
    // division each: summing the per-cell doubles first would round
    // at every cell for issue widths whose fixed-point denominator
    // is not a power of two (docs/timing-model.md §4).
    const double total_units = static_cast<double>(ps.cycles) *
                               static_cast<double>(ps.unitDenom);
    for (unsigned b = 0; b < timing::kNumBuckets; ++b) {
        const uint64_t app = ps.bucketUnits[b][0];
        uint64_t tol_side = 0;
        for (unsigned mod = 1; mod < timing::kNumModules; ++mod)
            tol_side += ps.bucketUnits[b][mod];
        m.bucketFrac[b][0] = total_units > 0
            ? static_cast<double>(app) / total_units : 0;
        m.bucketFrac[b][1] = total_units > 0
            ? static_cast<double>(tol_side) / total_units : 0;
        m.bucketSrc[b][0] = ps.bucketSrc[b][0];
        m.bucketSrc[b][1] = ps.bucketSrc[b][1];
    }

    if (snap.tolOnly) {
        m.haveTolOnly = true;
        m.tolOnlyCycles = snap.tolOnly->cycles;
        for (unsigned b = 0; b < timing::kNumBuckets; ++b) {
            m.tolOnlyBucket[b] = snap.tolOnly->bucketTotal(
                static_cast<timing::Bucket>(b));
        }
    }
    // Figure 8 characteristics come from the module-filtered TOL
    // instance (includes profiling instrumentation); fall back to the
    // source-split instance when only that one was requested.
    const timing::PipeStats *tchar = snap.tolModule
        ? &*snap.tolModule
        : (snap.tolOnly ? &*snap.tolOnly : nullptr);
    if (tchar) {
        m.tolIpc = tchar->ipc();
        m.tolDmissRate = tchar->l1d.missRate();
        m.tolImissRate = tchar->l1i.missRate();
        m.tolBpMissRate = tchar->bp.mispredictRate();
    }
    if (snap.appOnly) {
        m.appOnlyCycles = snap.appOnly->cycles;
        for (unsigned b = 0; b < timing::kNumBuckets; ++b) {
            m.appOnlyBucket[b] = snap.appOnly->bucketTotal(
                static_cast<timing::Bucket>(b));
        }
        m.haveIsolation = m.haveTolOnly;
    }
    if (snap.profile) {
        const profile::RunProfile &rp = *snap.profile;
        m.haveProfile = true;
        m.profDataAccesses = rp.dataReuse.totalAccesses();
        m.profDistinctLines = rp.dataReuse.distinctLines();
        // Median finite reuse distance: the midpoint access of the
        // finite-distance population, walked over the sparse
        // histogram (cold accesses have no distance and are
        // excluded).
        const uint64_t finite =
            m.profDataAccesses - rp.dataReuse.coldAccesses;
        if (finite) {
            uint64_t seen = 0;
            for (const auto &[dist, cnt] : rp.dataReuse.counts) {
                seen += cnt;
                if (seen * 2 >= finite) {
                    m.profMedianReuse = static_cast<double>(dist);
                    break;
                }
            }
        }
        m.profBranchEntropy = rp.branches.weightedEntropy();
        m.profTransitionRate = rp.branches.transitionRate();
        m.profMispredictRate = rp.branches.mispredictRate();
    }

    return m;
}

BenchMetrics
collectMetrics(const System &sys, const SystemResult &res,
               const std::string &name, const std::string &suite)
{
    return collectMetrics(snapshotFromSystem(sys, res), name, suite);
}

BenchMetrics
runBenchmark(const workloads::BenchParams &params,
             const MetricsOptions &options)
{
    return runWorkload(workloads::syntheticWorkload(params), options);
}

RunSnapshot
snapshotRun(const workloads::Workload &workload,
            const MetricsOptions &options)
{
    SimConfig cfg = configFromOptions(options);
    applyCaptureRecipe(cfg, workload);

    System sys(cfg);
    sys.load(workload);
    const SystemResult res = sys.run();
    return snapshotFromSystem(sys, res);
}

BenchMetrics
averageMetrics(const std::vector<BenchMetrics> &all,
               const std::string &label)
{
    panic_if(all.empty(), "averageMetrics over empty set");
    BenchMetrics avg;
    avg.name = label;
    avg.suite = label;

    const double n = static_cast<double>(all.size());
    double dyn_ratio = 0;
    for (const BenchMetrics &m : all) {
        avg.guestRetired += m.guestRetired;
        avg.cycles += m.cycles;
        avg.staticIm += m.staticIm;
        avg.staticBbm += m.staticBbm;
        avg.staticSbm += m.staticSbm;
        avg.dynIm += m.dynIm;
        avg.dynBbm += m.dynBbm;
        avg.dynSbm += m.dynSbm;
        avg.sbInvocations += m.sbInvocations;
        avg.guestIndirect += m.guestIndirect;
        avg.tolCycles += m.tolCycles;
        avg.appCycles += m.appCycles;
        dyn_ratio += m.dynStaticRatio;
        for (unsigned mod = 0; mod < timing::kNumModules; ++mod)
            avg.moduleCycles[mod] += m.moduleCycles[mod];
        for (unsigned b = 0; b < timing::kNumBuckets; ++b) {
            avg.bucketFrac[b][0] += m.bucketFrac[b][0] / n;
            avg.bucketFrac[b][1] += m.bucketFrac[b][1] / n;
            avg.bucketSrc[b][0] += m.bucketSrc[b][0];
            avg.bucketSrc[b][1] += m.bucketSrc[b][1];
        }
        avg.tolIpc += m.tolIpc / n;
        avg.tolDmissRate += m.tolDmissRate / n;
        avg.tolImissRate += m.tolImissRate / n;
        avg.tolBpMissRate += m.tolBpMissRate / n;
        avg.haveTolOnly = avg.haveTolOnly || m.haveTolOnly;
        avg.haveIsolation = avg.haveIsolation || m.haveIsolation;
        avg.haveProfile = avg.haveProfile || m.haveProfile;
        avg.profDataAccesses += m.profDataAccesses;
        avg.profDistinctLines += m.profDistinctLines;
        avg.profMedianReuse += m.profMedianReuse / n;
        avg.profBranchEntropy += m.profBranchEntropy / n;
        avg.profTransitionRate += m.profTransitionRate / n;
        avg.profMispredictRate += m.profMispredictRate / n;
        avg.tolOnlyCycles += m.tolOnlyCycles;
        avg.appOnlyCycles += m.appOnlyCycles;
        for (unsigned b = 0; b < timing::kNumBuckets; ++b) {
            avg.tolOnlyBucket[b] += m.tolOnlyBucket[b];
            avg.appOnlyBucket[b] += m.appOnlyBucket[b];
        }
    }
    avg.dynStaticRatio = dyn_ratio / n;

    // Report per-benchmark means for extensive quantities too.
    const auto mean = [&n](uint64_t total) {
        return static_cast<uint64_t>(
            static_cast<double>(total) / n + 0.5);
    };
    avg.guestRetired = mean(avg.guestRetired);
    avg.cycles = mean(avg.cycles);
    avg.staticIm = mean(avg.staticIm);
    avg.staticBbm = mean(avg.staticBbm);
    avg.staticSbm = mean(avg.staticSbm);
    avg.dynIm = mean(avg.dynIm);
    avg.dynBbm = mean(avg.dynBbm);
    avg.dynSbm = mean(avg.dynSbm);
    avg.sbInvocations = mean(avg.sbInvocations);
    avg.guestIndirect = mean(avg.guestIndirect);
    avg.tolCycles /= n;
    avg.appCycles /= n;
    for (unsigned mod = 0; mod < timing::kNumModules; ++mod)
        avg.moduleCycles[mod] /= n;
    avg.tolOnlyCycles = mean(avg.tolOnlyCycles);
    avg.appOnlyCycles = mean(avg.appOnlyCycles);
    avg.profDataAccesses = mean(avg.profDataAccesses);
    avg.profDistinctLines = mean(avg.profDistinctLines);
    for (unsigned b = 0; b < timing::kNumBuckets; ++b) {
        avg.tolOnlyBucket[b] /= n;
        avg.appOnlyBucket[b] /= n;
        avg.bucketSrc[b][0] /= n;
        avg.bucketSrc[b][1] /= n;
    }
    return avg;
}

} // namespace darco::sim
