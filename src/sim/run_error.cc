#include "sim/run_error.hh"

namespace darco::sim {

namespace {

struct ClassName
{
    RunErrorClass cls;
    const char *name;
};

constexpr ClassName kClassNames[] = {
    {RunErrorClass::None, "None"},
    {RunErrorClass::BadWorkload, "BadWorkload"},
    {RunErrorClass::TraceCorrupt, "TraceCorrupt"},
    {RunErrorClass::GuestFault, "GuestFault"},
    {RunErrorClass::BudgetExhausted, "BudgetExhausted"},
    {RunErrorClass::Timeout, "Timeout"},
    {RunErrorClass::IoTransient, "IoTransient"},
    {RunErrorClass::Internal, "Internal"},
};

} // namespace

const char *
runErrorClassName(RunErrorClass cls)
{
    for (const ClassName &entry : kClassNames) {
        if (entry.cls == cls)
            return entry.name;
    }
    return "Internal";
}

RunErrorClass
runErrorClassFromName(const std::string &name)
{
    for (const ClassName &entry : kClassNames) {
        if (name == entry.name)
            return entry.cls;
    }
    return RunErrorClass::None;
}

std::string
RunError::describe() const
{
    if (cls == RunErrorClass::None)
        return {};
    return strprintf("%s (%s): %s", name(),
                     transient() ? "transient" : "permanent",
                     context.c_str());
}

RunError
runErrorFromFatal(const FatalError &e, const std::string &uri)
{
    RunError err;
    err.uri = uri;
    err.context = e.what();
    switch (e.kind()) {
      case ErrKind::BadWorkload:
        err.cls = RunErrorClass::BadWorkload;
        break;
      case ErrKind::Io:
        err.cls = RunErrorClass::IoTransient;
        break;
      case ErrKind::Corrupt:
        err.cls = RunErrorClass::TraceCorrupt;
        break;
      case ErrKind::Guest:
        err.cls = RunErrorClass::GuestFault;
        break;
      case ErrKind::Unclassified:
      case ErrKind::Internal:
        err.cls = RunErrorClass::Internal;
        break;
    }
    return err;
}

} // namespace darco::sim
