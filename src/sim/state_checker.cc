#include "sim/state_checker.hh"

#include <cstring>

#include "common/logging.hh"
#include "host/address_map.hh"
#include "ir/ir.hh"

namespace darco::sim {

void
StateChecker::fail(const std::string &what)
{
    if (strictMode)
        panic("co-simulation mismatch: %s", what.c_str());
    if (fails.size() < 32)
        fails.push_back(what);
}

void
StateChecker::onCommit(uint64_t retired, const guest::State &state,
                       uint8_t known_flags)
{
    ++numCommits;
    const uint64_t executed = emu.run(retired);
    checked += executed;
    if (executed != retired) {
        fail(strprintf("authoritative side halted after %llu of %llu "
                       "instructions",
                       static_cast<unsigned long long>(executed),
                       static_cast<unsigned long long>(retired)));
        return;
    }

    const guest::State &ref = emu.state();
    if (ref.eip != state.eip) {
        fail(strprintf("EIP mismatch: authoritative 0x%08x vs "
                       "co-design 0x%08x after %llu insts",
                       ref.eip, state.eip,
                       static_cast<unsigned long long>(checked)));
        return;
    }
    for (unsigned r = 0; r < guest::NumGprs; ++r) {
        if (ref.gpr[r] != state.gpr[r]) {
            fail(strprintf("GPR %u mismatch at eip 0x%08x: "
                           "authoritative 0x%08x vs co-design 0x%08x",
                           r, ref.eip, ref.gpr[r], state.gpr[r]));
            return;
        }
    }

    struct FlagBit
    {
        uint8_t mask;
        uint32_t eflag;
        const char *name;
    };
    static const FlagBit bits[] = {
        {ir::fmask::Z, guest::flag::ZF, "ZF"},
        {ir::fmask::S, guest::flag::SF, "SF"},
        {ir::fmask::C, guest::flag::CF, "CF"},
        {ir::fmask::O, guest::flag::OF, "OF"},
    };
    for (const FlagBit &fb : bits) {
        if (!(known_flags & fb.mask))
            continue;
        const bool want = ref.eflags & fb.eflag;
        const bool got = state.eflags & fb.eflag;
        if (want != got) {
            fail(strprintf("%s mismatch at eip 0x%08x: authoritative "
                           "%d vs co-design %d",
                           fb.name, ref.eip, want, got));
            return;
        }
    }

    for (unsigned r = 0; r < guest::NumFprs; ++r) {
        // Bitwise compare (NaN-safe).
        uint64_t a, b;
        std::memcpy(&a, &ref.fpr[r], 8);
        std::memcpy(&b, &state.fpr[r], 8);
        if (a != b) {
            fail(strprintf("FPR %u mismatch at eip 0x%08x: "
                           "authoritative %a vs co-design %a",
                           r, ref.eip, ref.fpr[r], state.fpr[r]));
            return;
        }
    }
}

std::string
compareGuestMemory(const guest::Memory &authoritative,
                   const host::Memory &codesign)
{
    // Union of dirty guest pages on both sides.
    std::unordered_set<uint32_t> pages;
    for (uint32_t page : authoritative.dirtyPages())
        pages.insert(page);
    for (uint32_t page : codesign.dirtyPages()) {
        if (page < host::amap::kGuestLimit)
            pages.insert(page);
    }

    std::vector<uint8_t> a(guest::Memory::kPageSize);
    std::vector<uint8_t> b(guest::Memory::kPageSize);
    for (uint32_t page : pages) {
        authoritative.readBytes(page, a.data(), a.size());
        codesign.readBytes(page, b.data(), b.size());
        if (std::memcmp(a.data(), b.data(), a.size()) != 0) {
            for (size_t i = 0; i < a.size(); ++i) {
                if (a[i] != b[i]) {
                    return strprintf(
                        "guest memory mismatch at 0x%08x: "
                        "authoritative 0x%02x vs co-design 0x%02x",
                        page + static_cast<uint32_t>(i), a[i], b[i]);
                }
            }
        }
    }
    return "";
}

} // namespace darco::sim
