/**
 * @file
 * Co-simulation state checker (Figure 2).
 *
 * Observes the co-design component's architectural commits, replays
 * the same number of guest instructions on the authoritative x86
 * component, and compares GPRs, EIP, the architecturally-valid subset
 * of EFLAGS (lazy flags: bits the DBT proved dead are skipped, and PF
 * is never materialized), and FP registers bit-for-bit.
 */

#ifndef DARCO_SIM_STATE_CHECKER_HH
#define DARCO_SIM_STATE_CHECKER_HH

#include <string>
#include <vector>

#include "guest/emulator.hh"
#include "tol/runtime.hh"

namespace darco::sim {

class StateChecker : public tol::CommitObserver
{
  public:
    StateChecker(guest::Emulator &authoritative, bool strict)
        : emu(authoritative), strictMode(strict)
    {}

    void onCommit(uint64_t retired, const guest::State &state,
                  uint8_t known_flags) override;

    /** All mismatches observed (empty means success so far). */
    const std::vector<std::string> &failures() const { return fails; }

    uint64_t commits() const { return numCommits; }
    uint64_t instructionsChecked() const { return checked; }

  private:
    void fail(const std::string &what);

    guest::Emulator &emu;
    bool strictMode;
    std::vector<std::string> fails;
    uint64_t numCommits = 0;
    uint64_t checked = 0;
};

/**
 * Compare the dirty guest pages of the authoritative memory against
 * the guest portion of the co-design component's host memory.
 * @return a diagnostic string, empty when equal.
 */
std::string compareGuestMemory(const guest::Memory &authoritative,
                               const host::Memory &codesign);

} // namespace darco::sim

#endif // DARCO_SIM_STATE_CHECKER_HH
