#include "sim/system.hh"

#include "common/logging.hh"

namespace darco::sim {

System::System(const SimConfig &config) : cfg(config)
{
    combined = std::make_unique<timing::Pipeline>(
        cfg.timing, timing::Pipeline::Filter::All);
    fanout.add(combined.get());
    if (cfg.tolOnlyPipe) {
        tolOnly = std::make_unique<timing::Pipeline>(
            cfg.timing, timing::Pipeline::Filter::TolOnly);
        fanout.add(tolOnly.get());
    }
    if (cfg.appOnlyPipe) {
        appOnly = std::make_unique<timing::Pipeline>(
            cfg.timing, timing::Pipeline::Filter::AppOnly);
        fanout.add(appOnly.get());
    }
    if (cfg.tolModulePipe) {
        tolModule = std::make_unique<timing::Pipeline>(
            cfg.timing, timing::Pipeline::Filter::TolModule);
        fanout.add(tolModule.get());
    }

    runtime = std::make_unique<tol::Runtime>(cfg.tol, hostMem, fanout);
    authEmu = std::make_unique<guest::Emulator>(authMem);
}

void
System::load(const guest::Program &program)
{
    panic_if(loaded, "System::load called twice");
    loaded = true;
    runtime->load(program);
    if (cfg.cosim) {
        authEmu->reset(program);
        stateChecker = std::make_unique<StateChecker>(*authEmu,
                                                      cfg.cosimStrict);
        runtime->setObserver(stateChecker.get());
    }
}

SystemResult
System::run()
{
    panic_if(!loaded, "System::run before load");
    panic_if(ran, "System::run called twice");
    ran = true;

    const tol::Runtime::RunResult rr = runtime->run(cfg.guestBudget);

    // The functional pass above streamed records into the timing
    // instances, which advance time lazily behind a bounded backlog
    // (event-driven core; docs/timing-model.md). finish() runs each
    // instance's final drain — fast-forwarding any tail stall in one
    // jump — and snapshots the component stats.
    combined->finish();
    if (tolOnly)
        tolOnly->finish();
    if (appOnly)
        appOnly->finish();
    if (tolModule)
        tolModule->finish();

    SystemResult result;
    result.guestRetired = rr.guestRetired;
    result.halted = rr.halted;
    result.cycles = combined->stats().cycles;
    if (cfg.cosim)
        result.memoryDiff = compareGuestMemory(authMem, hostMem);
    return result;
}

} // namespace darco::sim
