#include "sim/system.hh"

#include "common/logging.hh"

namespace darco::sim {

System::System(const SimConfig &config) : cfg(config)
{
    combined = std::make_unique<timing::Pipeline>(
        cfg.timing, timing::Pipeline::Filter::All);
    fanout.add(combined.get());
    if (cfg.tolOnlyPipe) {
        tolOnly = std::make_unique<timing::Pipeline>(
            cfg.timing, timing::Pipeline::Filter::TolOnly);
        fanout.add(tolOnly.get());
    }
    if (cfg.appOnlyPipe) {
        appOnly = std::make_unique<timing::Pipeline>(
            cfg.timing, timing::Pipeline::Filter::AppOnly);
        fanout.add(appOnly.get());
    }
    if (cfg.tolModulePipe) {
        tolModule = std::make_unique<timing::Pipeline>(
            cfg.timing, timing::Pipeline::Filter::TolModule);
        fanout.add(tolModule.get());
    }
    if (cfg.profile) {
        profiler = std::make_unique<profile::Collector>(cfg.timing);
        fanout.add(profiler.get());
    }

    runtime = std::make_unique<tol::Runtime>(cfg.tol, hostMem, fanout);
    authEmu = std::make_unique<guest::Emulator>(authMem);
}

void
System::load(const guest::Program &program)
{
    loadIdentified(program, "anonymous", "", 0);
}

void
System::load(const workloads::Workload &workload)
{
    loadIdentified(workload.program, workload.name, workload.suite,
                   workload.seed);
}

void
System::loadIdentified(const guest::Program &program,
                       const std::string &name,
                       const std::string &suite, uint64_t seed)
{
    panic_if(loaded, "System::load called twice");
    loaded = true;
    runtime->load(program);
    if (cfg.cosim) {
        authEmu->reset(program);
        stateChecker = std::make_unique<StateChecker>(*authEmu,
                                                      cfg.cosimStrict);
        runtime->setObserver(stateChecker.get());
        if (cfg.profile) {
            // The checker replays every retired guest instruction
            // through the emulator, so its branch stream is the exact
            // dynamic guest branch trace — collect it.
            guestBranches =
                std::make_unique<profile::GuestBranchCollector>();
            authEmu->setBranchObserver(guestBranches.get());
        }
    }
    if (!cfg.captureTracePath.empty()) {
        capture = std::make_unique<trace::TraceFile>();
        capture->meta.name = name;
        capture->meta.suite = suite;
        capture->meta.seed = seed;
        capture->meta.guestBudget = cfg.guestBudget;
        capture->meta.imToBbThreshold = cfg.tol.imToBbThreshold;
        capture->meta.bbToSbThreshold = cfg.tol.bbToSbThreshold;
        capture->program = program;
    }
}

void
System::writeCapturedTrace(const SystemResult &result)
{
    const timing::PipeStats &ps = combined->stats();
    const tol::TolStats &ts = runtime->stats();
    trace::TracePins &pins = capture->pins;
    pins.guestRetired = result.guestRetired;
    pins.simCycles = result.cycles;
    pins.hostRecords = ps.records;
    pins.timingCore =
        combined->engine() == timing::Pipeline::Engine::EventDriven
            ? "event" : "reference";
    pins.dynIm = ts.dynIm;
    pins.dynBbm = ts.dynBbm;
    pins.dynSbm = ts.dynSbm;
    pins.bbsTranslated = ts.bbsTranslated;
    pins.sbsCreated = ts.sbsCreated;
    pins.guestIndirectBranches = ts.guestIndirectBranches;
    capture->hasPins = true;
    trace::writeTrace(cfg.captureTracePath, *capture);
}

SystemResult
System::run()
{
    panic_if(!loaded, "System::run before load");
    panic_if(ran, "System::run called twice");
    ran = true;

    const tol::Runtime::RunResult rr =
        runtime->run(cfg.guestBudget, cfg.cancel);

    // The functional pass above streamed records into the timing
    // instances, which advance time lazily behind a bounded backlog
    // (event-driven core; docs/timing-model.md). finish() runs each
    // instance's final drain — fast-forwarding any tail stall in one
    // jump — and snapshots the component stats.
    combined->finish();
    if (tolOnly)
        tolOnly->finish();
    if (appOnly)
        appOnly->finish();
    if (tolModule)
        tolModule->finish();

    SystemResult result;
    result.guestRetired = rr.guestRetired;
    result.halted = rr.halted;
    result.cancelled = rr.cancelled;
    result.cycles = combined->stats().cycles;
    // A cancelled run stopped mid-workload: its end state is not the
    // workload's end state, so the final memory audit is meaningless
    // and the pins of a partial run must never be published as a
    // replayable trace (per-commit cosim checks still ran).
    if (cfg.cosim && !rr.cancelled)
        result.memoryDiff = compareGuestMemory(authMem, hostMem);
    if (capture && !rr.cancelled)
        writeCapturedTrace(result);
    return result;
}

} // namespace darco::sim
