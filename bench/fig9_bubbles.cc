/**
 * @file
 * Figure 9 regeneration: distribution of execution cycles over the
 * main bubble sources and instruction-retiring cycles, each split
 * between TOL and the application — for the four paper outliers and
 * the suite averages.
 *
 * Paper shapes: bubbles ~48% of execution time on average; D$-miss
 * bubbles the largest class (~26%), then scheduling (~12%), I$ (~6%),
 * branch (~4%). lbm-like applications show nearly no TOL share;
 * ragdoll/jpg2000enc-like show large TOL bubble shares; perlbench-like
 * splits bubbles across both sides.
 */

#include "bench_util.hh"

using namespace darco;
using bench::BenchArgs;
using timing::Bucket;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    sim::MetricsOptions options;

    // Outliers first (paper figure layout), then suite averages —
    // the sweep provides everything; we select rows for printing.
    const auto all = bench::runSweep(args, options);

    auto is_outlier = [](const std::string &name) {
        return name == "470.lbm" || name == "007.jpg2000enc" ||
               name == "107.novis_ragdoll" || name == "400.perlbench";
    };

    std::printf("=== Figure 9: cycle breakdown (%% of execution time; "
                "APP / TOL) ===\n");
    Table t({"benchmark", "D$miss A/T", "I$miss A/T", "branch A/T",
             "sched A/T", "insts A/T", "bubbles%"});
    for (const sim::BenchMetrics &m : all) {
        const bool avg_row = m.suite.rfind("AVG", 0) == 0;
        if (!avg_row && !is_outlier(m.name) && !args.csv)
            continue;
        auto cell = [&](Bucket b) {
            return strprintf("%4.1f /%4.1f",
                100.0 * m.bucketFrac[static_cast<unsigned>(b)][0],
                100.0 * m.bucketFrac[static_cast<unsigned>(b)][1]);
        };
        double bubbles = 0;
        for (unsigned b = 1; b < timing::kNumBuckets; ++b)
            bubbles += m.bucketFrac[b][0] + m.bucketFrac[b][1];
        t.beginRow();
        t.add(m.name);
        t.add(cell(Bucket::DcacheBubble));
        t.add(cell(Bucket::IcacheBubble));
        t.add(cell(Bucket::BranchBubble));
        t.add(cell(Bucket::SchedBubble));
        t.add(cell(Bucket::Insts));
        t.addf("%.1f", 100.0 * bubbles);
    }
    bench::renderTable(t, args);
    return 0;
}
