/**
 * @file
 * Figure 11 regeneration: potential performance gains if the
 * TOL/application interaction were eliminated, decomposed per bubble
 * category (D$ miss, I$ miss, instruction scheduling, branch),
 * separately for TOL (11a) and the application (11b), as a
 * percentage of total execution time.
 *
 * Paper shape: the data cache dominates the potential improvement
 * (perlbench-like: ~7% of time for TOL, ~10.6% for the application);
 * branch and I$ effects are smaller but not negligible.
 */

#include "bench_util.hh"

using namespace darco;
using bench::BenchArgs;
using timing::Bucket;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    sim::MetricsOptions options;
    options.tolOnlyPipe = true;
    options.appOnlyPipe = true;
    const auto all = bench::runSweep(args, options);

    auto is_outlier = [](const std::string &name) {
        return name == "470.lbm" || name == "007.jpg2000enc" ||
               name == "107.novis_ragdoll" || name == "400.perlbench";
    };

    auto print_side = [&](const char *title, bool tol_side) {
        std::printf("%s\n", title);
        Table t({"benchmark", "D$miss%", "I$miss%", "sched%",
                 "branch%", "total%"});
        for (const sim::BenchMetrics &m : all) {
            const bool avg_row = m.suite.rfind("AVG", 0) == 0;
            if (!avg_row && !is_outlier(m.name) && !args.csv)
                continue;
            auto val = [&](Bucket b) {
                return 100.0 * (tol_side ? m.potentialTol(b)
                                         : m.potentialApp(b));
            };
            const double total = val(Bucket::DcacheBubble) +
                val(Bucket::IcacheBubble) + val(Bucket::SchedBubble) +
                val(Bucket::BranchBubble);
            t.beginRow();
            t.add(m.name);
            t.addf("%.2f", val(Bucket::DcacheBubble));
            t.addf("%.2f", val(Bucket::IcacheBubble));
            t.addf("%.2f", val(Bucket::SchedBubble));
            t.addf("%.2f", val(Bucket::BranchBubble));
            t.addf("%.2f", total);
        }
        bench::renderTable(t, args);
    };

    print_side("=== Figure 11a: potential improvement of TOL "
               "(%% of execution time) ===", true);
    std::printf("\n");
    print_side("=== Figure 11b: potential improvement of the "
               "application (%% of execution time) ===", false);
    return 0;
}
