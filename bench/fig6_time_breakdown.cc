/**
 * @file
 * Figure 6 regeneration: breakdown of execution time into TOL
 * overhead and application time, with the secondary-axis series
 * (dynamic/static instruction ratio, log scale in the paper, and the
 * number of SBM invocations).
 *
 * Paper shapes: average overhead ~28% MediaBench, ~22% Physicsbench
 * and SPEC INT, ~12% SPEC FP; overhead anti-correlates with the
 * dynamic/static ratio; applications whose repetition sits close to
 * the promotion threshold (many superblocks, little reuse) pay the
 * most SBM overhead.
 */

#include "bench_util.hh"

using namespace darco;
using bench::BenchArgs;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    sim::MetricsOptions options;
    const auto all = bench::runSweep(args, options);

    std::printf("=== Figure 6: execution-time breakdown ===\n");
    Table t({"benchmark", "suite", "overhead%", "app%", "dyn/static",
             "SBM invocations", "cycles"});
    for (const sim::BenchMetrics &m : all) {
        t.beginRow();
        t.add(m.name);
        t.add(m.suite);
        t.addf("%.1f", 100.0 * m.tolOverheadFrac());
        t.addf("%.1f", 100.0 * (1.0 - m.tolOverheadFrac()));
        t.addf("%.0f", m.dynStaticRatio);
        t.addf("%llu", static_cast<unsigned long long>(m.sbInvocations));
        t.addf("%llu", static_cast<unsigned long long>(m.cycles));
    }
    bench::renderTable(t, args);
    return 0;
}
