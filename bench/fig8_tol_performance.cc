/**
 * @file
 * Figure 8 regeneration: microarchitectural characteristics of TOL
 * executed in isolation (the timing simulator ignores all
 * application instructions): IPC, L1-D and L1-I miss rates, branch
 * misprediction rate.
 *
 * Paper shapes: TOL IPC varies widely across emulated applications
 * (0.85–1.48 in the paper) even though TOL "repeats the same tasks";
 * the I$ impact is negligible (TOL's small code footprint fits L1-I).
 */

#include "bench_util.hh"

using namespace darco;
using bench::BenchArgs;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    sim::MetricsOptions options;
    options.tolModulePipe = true;
    const auto all = bench::runSweep(args, options);

    std::printf("=== Figure 8: TOL performance characteristics "
                "(TOL in isolation) ===\n");
    Table t({"benchmark", "suite", "TOL IPC", "D$ miss%", "I$ miss%",
             "BP mispredict%"});
    double min_ipc = 1e9, max_ipc = 0;
    for (const sim::BenchMetrics &m : all) {
        t.beginRow();
        t.add(m.name);
        t.add(m.suite);
        t.addf("%.2f", m.tolIpc);
        t.addf("%.2f", 100.0 * m.tolDmissRate);
        t.addf("%.2f", 100.0 * m.tolImissRate);
        t.addf("%.2f", 100.0 * m.tolBpMissRate);
        if (m.suite.rfind("AVG", 0) != 0) {
            min_ipc = std::min(min_ipc, m.tolIpc);
            max_ipc = std::max(max_ipc, m.tolIpc);
        }
    }
    bench::renderTable(t, args);
    std::printf("TOL IPC range across benchmarks: %.2f .. %.2f "
                "(paper: 0.85 .. 1.48)\n", min_ipc, max_ipc);
    return 0;
}
