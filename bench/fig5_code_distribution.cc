/**
 * @file
 * Figure 5 regeneration: static (5a) and dynamic (5b) guest-code
 * distribution across the three TOL execution modes (IM, BBM, SBM)
 * for every benchmark plus suite averages.
 *
 * Paper shapes to look for: a large minority of static code never
 * leaves IM; only a small static fraction reaches SBM, yet ~97% of
 * the *dynamic* instruction stream executes in SBM.
 */

#include "bench_util.hh"

using namespace darco;
using bench::BenchArgs;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    sim::MetricsOptions options;
    const auto all = bench::runSweep(args, options);

    std::printf("=== Figure 5a: static x86 code distribution (%%) ===\n");
    Table a({"benchmark", "suite", "static insts", "IM%", "BBM%",
             "SBM%"});
    for (const sim::BenchMetrics &m : all) {
        const double total =
            std::max<double>(1.0, static_cast<double>(m.staticTotal()));
        a.beginRow();
        a.add(m.name);
        a.add(m.suite);
        a.addf("%llu", static_cast<unsigned long long>(m.staticTotal()));
        a.addf("%.1f", 100.0 * static_cast<double>(m.staticIm) / total);
        a.addf("%.1f", 100.0 * static_cast<double>(m.staticBbm) / total);
        a.addf("%.1f", 100.0 * static_cast<double>(m.staticSbm) / total);
    }
    bench::renderTable(a, args);

    std::printf("\n=== Figure 5b: dynamic x86 code distribution (%%) ===\n");
    Table b({"benchmark", "suite", "dyn insts", "IM%", "BBM%", "SBM%"});
    for (const sim::BenchMetrics &m : all) {
        const double total =
            std::max<double>(1.0, static_cast<double>(m.dynTotal()));
        b.beginRow();
        b.add(m.name);
        b.add(m.suite);
        b.addf("%llu", static_cast<unsigned long long>(m.dynTotal()));
        b.addf("%.2f", 100.0 * static_cast<double>(m.dynIm) / total);
        b.addf("%.2f", 100.0 * static_cast<double>(m.dynBbm) / total);
        b.addf("%.2f", 100.0 * static_cast<double>(m.dynSbm) / total);
    }
    bench::renderTable(b, args);
    return 0;
}
