/**
 * @file
 * Simulator-throughput harness: measures host speed (process-CPU
 * time, robust on shared machines) of the engine's hottest execution
 * modes (pure interpretation, steady-state translated execution, the
 * default mixed pipeline, a stall-heavy memory-bound run, and
 * trace-driven replays of the mixed/stall-heavy workloads) in
 * guest-MIPS, host-records/s and simulated-cycles/s, and emits
 * BENCH_engine.json so every future PR has a perf trajectory to
 * compare against. Workloads resolve through the source registry
 * (source://synthetic/..., source://trace/...); the trace scenarios
 * capture their input at startup and hard-fail unless the replay
 * reproduces the capture run's pinned determinism fields.
 *
 * Every scenario runs twice — once on the cycle-stepped reference
 * timing core and once on the event-driven core — and the harness
 * hard-fails unless the two produce bit-identical metrics (every
 * cycle total, every bucket cell, every cache/TLB/predictor counter).
 * The engine is deterministic, so any divergence is a semantics
 * change, not an optimization; the per-scenario event_core_speedup
 * field in the JSON is the load-matched A/B this enforces. See
 * docs/timing-model.md for the equivalence argument.
 *
 * The baseline_* constants below were measured at the commit
 * immediately before the PR-1 hot-path overhaul (seed engine), with
 * the identical harness, budgets, and build flags.
 */

#include <cinttypes>
#include <cstring>

#include "bench_util.hh"
#include "sim/system.hh"
#include "workloads/source.hh"

namespace {

using namespace darco;

/** One timed configuration of the engine. */
struct Scenario
{
    const char *name;
    /** Workload URI (source://synthetic/... or source://trace/...). */
    const char *workload;
    /** Run recipe; ignored for trace workloads, which re-apply the
     *  recipe pinned at capture time. */
    uint64_t budget;
    bool interpretOnly;
    uint32_t sbThreshold;
    double baselineGuestMips;
    double baselineHostInstPerSec;
    /** Host issue width (wide-issue scenarios sweep past 2). */
    uint32_t issueWidth = 2;
    /** When set, build the workload directly from these synthetic
     *  parameters instead of resolving the URI (scenarios that are
     *  not one of the 48 registered paper benchmarks). */
    const workloads::BenchParams *custom = nullptr;
};

/**
 * dense_loop: a high-ILP integer kernel (BenchParams::hotIlp) whose
 * translated steady state issues at full machine width with all
 * same-line component outcomes — the regime the event core's burst
 * dispatcher retires in bulk. Not one of the 48 paper benchmarks
 * (their ILP is a modeled application characteristic); it exists so
 * the committed trajectory has a scenario where burst coverage is
 * structural, making burst_fraction a meaningful CI floor
 * (check_perf.py) rather than a workload accident.
 */
const workloads::BenchParams &
denseLoopParams()
{
    static const workloads::BenchParams params = [] {
        workloads::BenchParams p;
        p.name = "dense_loop";
        p.suite = "engine";
        p.seed = 7;
        p.hotLoops = 1;
        p.hotIters = 100'000;
        p.hotBody = 48;
        p.hotIlp = true;
        p.warmLoops = 0;
        p.fpShare = 0.0;
        p.dataKb = 4;
        return p;
    }();
    return params;
}

/** One scenario outcome: the result plus a full metrics snapshot. */
struct RunOutcome
{
    sim::SystemResult result;
    timing::PipeStats stats;
    timing::Pipeline::Engine engine =
        timing::Pipeline::Engine::CycleStepped;
    double seconds = 0;
    /** Whether a characterization profiler was live in the timed
     *  System (recorded from the instance, not the requested config,
     *  so a silent re-route shows up in the committed JSON). */
    bool profiled = false;
    /** Whether the IR/regalloc verifier was live in the timed System
     *  (same discipline: read back from the live runtime). */
    bool verified = false;
    /** Whether the burst dispatcher was armed in the timed System
     *  (read back from the live pipeline, not the request). */
    bool burst = false;
};

RunOutcome
runScenario(const Scenario &sc, bool event_core, bool verify_ir = false,
            bool burst = true)
{
    const workloads::Workload workload =
        sc.custom ? workloads::syntheticWorkload(*sc.custom)
                  : workloads::resolveWorkload(sc.workload);

    sim::SimConfig cfg;
    cfg.guestBudget = sc.budget;
    cfg.tol.bbToSbThreshold = sc.sbThreshold;
    // Perf baselines time the bare engine: the IR/regalloc verifier
    // (default-on under ctest) re-derives dataflow for every
    // translation, which is translation-path work a throughput
    // trajectory must not include. check_perf.py pins "verify": "off"
    // on every committed scenario; the verify_ir override exists for
    // the informational overhead A/B below, which never reaches the
    // reporter.
    cfg.tol.verifyIr = verify_ir;
    cfg.timing.eventCore = event_core;
    cfg.timing.burst = burst;
    cfg.timing.issueWidth = sc.issueWidth;
    if (sc.interpretOnly)
        cfg.tol.imToBbThreshold = 0xFFFFFFFFu;
    // Bit-identical replay: a trace's capture-time recipe wins over
    // the scenario fields (which are 0 for trace scenarios).
    sim::applyCaptureRecipe(cfg, workload);

    sim::System sys(cfg);
    sys.load(workload);

    bench::CpuTimer timer;
    RunOutcome out;
    out.result = sys.run();
    out.seconds = timer.seconds();
    out.stats = sys.combinedStats();
    out.engine = sys.timingEngine();
    out.profiled = sys.profileCollector() != nullptr;
    out.verified = sys.tolRuntime().config().verifyIr;
    out.burst = sys.timingBurstEnabled();

    if (workload.capturedPins) {
        // A replayed trace must reproduce the capture run's pinned
        // determinism fields on either timing core.
        const trace::TracePins &pins = *workload.capturedPins;
        fatal_if(out.result.guestRetired != pins.guestRetired ||
                     out.result.cycles != pins.simCycles ||
                     out.stats.records != pins.hostRecords,
                 "trace replay diverged from capture pins on %s: "
                 "guest %llu/%llu cycles %llu/%llu records %llu/%llu",
                 sc.name,
                 static_cast<unsigned long long>(
                     out.result.guestRetired),
                 static_cast<unsigned long long>(pins.guestRetired),
                 static_cast<unsigned long long>(out.result.cycles),
                 static_cast<unsigned long long>(pins.simCycles),
                 static_cast<unsigned long long>(out.stats.records),
                 static_cast<unsigned long long>(pins.hostRecords));
    }
    return out;
}

/**
 * Capture a synthetic workload to a replayable binary trace in the
 * CWD (next to BENCH_engine.json). The capture run doubles as the
 * live run whose determinism fields are pinned inside the trace.
 */
void
captureTrace(const char *benchmark, uint64_t budget,
             uint32_t sb_threshold, const char *path)
{
    sim::SimConfig cfg;
    cfg.guestBudget = budget;
    cfg.tol.bbToSbThreshold = sb_threshold;
    cfg.timing.eventCore = true;
    cfg.captureTracePath = path;
    sim::System sys(cfg);
    sys.load(workloads::resolveWorkload(
        workloads::syntheticUri(benchmark)));
    sys.run();
}

/**
 * Bit-exact comparison of everything both timing cores measure,
 * via the shared timing::diffStats comparator (the same one the A/B
 * determinism tests use, so the covered field set cannot drift).
 */
void
expectIdentical(const char *scenario, const RunOutcome &stepped,
                const RunOutcome &event)
{
    // The A/B is only an A/B if the requested cores actually ran:
    // a silent fallback would compare the reference core to itself
    // and certify nothing (the committed timing_core field plus
    // check_perf.py guard the same property across PRs).
    fatal_if(event.engine != timing::Pipeline::Engine::EventDriven,
             "scenario %s: event-core run fell back to the "
             "reference core",
             scenario);
    fatal_if(stepped.engine != timing::Pipeline::Engine::CycleStepped,
             "scenario %s: reference run used the event core",
             scenario);
    fatal_if(stepped.result.guestRetired != event.result.guestRetired,
             "A/B mismatch on %s: guest_retired %llu != %llu",
             scenario,
             static_cast<unsigned long long>(
                 stepped.result.guestRetired),
             static_cast<unsigned long long>(
                 event.result.guestRetired));
    const std::string diff =
        timing::diffStats(stepped.stats, event.stats);
    fatal_if(!diff.empty(),
             "event-driven core diverged from the reference core on "
             "%s:\n%s",
             scenario, diff.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    // Budgets are fixed per scenario so results stay comparable
    // across PRs; parse() still provides --help and arg validation.
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    // engine_speed is intentionally serial: every sample is a
    // process-CPU timing of ONE simulation owning the whole process,
    // and the committed BENCH_engine.json trajectory is only
    // comparable under that condition. Concurrent jobs would share
    // caches/bandwidth and poison the measurements (the figure
    // sweeps parallelize fine — their output is simulated
    // quantities, not host timings). check_perf.py enforces the
    // matching "execution": "serial" field on every committed
    // scenario.
    fatal_if(args.jobs > 1,
             "engine_speed is intentionally serial (--jobs=%u "
             "rejected): its samples are host timings, and sharing "
             "the process with concurrent jobs would corrupt the "
             "committed perf trajectory",
             args.jobs);

    bench::ThroughputReporter reporter("engine_speed");

    // Baselines: pre-optimization engine (seed src/, Release build,
    // no IPO/PGO), same harness and budgets, median of 6 interleaved
    // A/B rounds on the same machine (process CPU time).
    const Scenario scenarios[] = {
        {"interpreter", "source://synthetic/464.h264ref", 250'000,
         true, 300, 0.947, 18.0e6},
        {"translated", "source://synthetic/464.h264ref", 2'000'000,
         false, 300, 9.093, 19.8e6},
        // High-ILP dense kernel (see denseLoopParams above): the
        // burst dispatcher's structural scenario. No seed baseline
        // (added with the burst dispatcher); check_perf.py holds its
        // burst_fraction to a floor.
        {"dense_loop", "", 2'000'000, false, 300, 0, 0, 2,
         &denseLoopParams()},
        {"mixed_464.h264ref", "source://synthetic/464.h264ref",
         1'000'000, false, 1000, 7.802, 19.9e6},
        // Stall-heavy pointer chasing: most cycles are load-miss or
        // TLB stalls, the regime where the event core advances many
        // simulated cycles per host op. No seed baseline (added with
        // the event core); cycles_per_host_record and
        // sim_cycles_per_sec are its headline columns.
        {"stallheavy_429.mcf", "source://synthetic/429.mcf",
         1'000'000, false, 1000, 0, 0},
        // Wide-issue sweep points: the event core used to silently
        // fall back to the reference core above width 2, so these
        // scenarios exist to pin event_core_speedup > 1 at the
        // widths the paper's microarchitectural sweeps visit. Width
        // 3 additionally exercises the non-power-of-two fixed-point
        // denominator (lcm(1..3) = 6).
        {"wide3_464.h264ref", "source://synthetic/464.h264ref",
         1'000'000, false, 1000, 0, 0, 3},
        {"wide4_429.mcf", "source://synthetic/429.mcf", 1'000'000,
         false, 1000, 0, 0, 4},
        // Trace-driven replay: the same workloads as the mixed and
        // stall-heavy scenarios, sourced from binary traces captured
        // at startup (capture -> replay on every harness run). The
        // replay must reproduce the trace's pinned determinism
        // fields exactly (runScenario asserts it in-process), so the
        // committed JSON rows for these scenarios are CI's proof
        // that trace round-trips stay bit-identical — their
        // guest_retired/sim_cycles/host_records equal the
        // mixed_464.h264ref / stallheavy_429.mcf rows by
        // construction.
        {"trace_464.h264ref",
         "source://trace/engine_speed_464.h264ref.dtrc", 0, false, 0,
         0, 0},
        {"trace_429.mcf", "source://trace/engine_speed_429.mcf.dtrc",
         0, false, 0, 0, 0},
    };

    // Capture the trace scenarios' inputs before any timing: the
    // capture runs also pin the determinism fields the replays are
    // checked against.
    std::fprintf(stderr, "  capturing replay traces ...\n");
    captureTrace("464.h264ref", 1'000'000, 1000,
                 "engine_speed_464.h264ref.dtrc");
    captureTrace("429.mcf", 1'000'000, 1000,
                 "engine_speed_429.mcf.dtrc");

    for (const Scenario &sc : scenarios) {
        std::fprintf(stderr, "  running %-20s (A/B) ...\n", sc.name);
        const RunOutcome stepped = runScenario(sc, false);
        const RunOutcome event = runScenario(sc, true);
        expectIdentical(sc.name, stepped, event);

        const timing::PipeStats &ps = event.stats;
        bench::ThroughputSample sample;
        sample.name = sc.name;
        sample.guestRetired = event.result.guestRetired;
        sample.hostRecords = ps.records;
        sample.cycles = event.result.cycles;
        sample.seconds = event.seconds;
        sample.timingCore =
            event.engine == timing::Pipeline::Engine::EventDriven
                ? "event" : "reference";
        sample.steppedSeconds = stepped.seconds;
        // Perf baselines time the bare engine: characterization
        // profiling must stay off (check_perf.py pins this in the
        // committed JSON).
        sample.profile =
            (event.profiled || stepped.profiled) ? "on" : "off";
        sample.verify =
            (event.verified || stepped.verified) ? "on" : "off";
        // engine_speed drives System directly, never the BatchRunner,
        // so no result cache can replay a snapshot into a timed run;
        // the field pins that fact in the committed JSON
        // (check_perf.py rejects anything but "off").
        sample.cache = "off";
        // Dispatch engine actually armed in the timed event run (the
        // reference run never bursts by construction).
        sample.burst = event.burst ? "on" : "off";
        sample.burstFraction = ps.burstFraction();
        reporter.add(sample);
        if (sc.baselineGuestMips > 0) {
            reporter.addBaseline(sc.name, sc.baselineGuestMips,
                                 sc.baselineHostInstPerSec);
        }

        // Determinism fingerprint: simulated quantities only (no wall
        // clock). Must not change across speed optimizations.
        std::fprintf(
            stderr,
            "  fingerprint %s: guest=%" PRIu64 " records=%" PRIu64
            " cycles=%" PRIu64 " l1d=%" PRIu64 "/%" PRIu64
            " l1i=%" PRIu64 "/%" PRIu64 " l2=%" PRIu64 "/%" PRIu64
            " tlb=%" PRIu64 "/%" PRIu64 " bp=%" PRIu64 "/%" PRIu64
            " ipc=%.6f\n",
            sc.name, event.result.guestRetired, ps.records,
            event.result.cycles, ps.l1d.accesses, ps.l1d.misses,
            ps.l1i.accesses, ps.l1i.misses, ps.l2.accesses,
            ps.l2.misses, ps.tlb.accesses, ps.tlb.l1Misses,
            ps.bp.branches, ps.bp.mispredicts, ps.ipc());
        std::fprintf(stderr,
                     "  a/b %s: stepped=%.3fs event=%.3fs "
                     "speedup=%.2fx cycles/record=%.3f\n",
                     sc.name, stepped.seconds, event.seconds,
                     stepped.seconds / event.seconds,
                     sample.cyclesPerRecord());
    }

    // Informational verify:on A/B (never committed): re-run the
    // mixed scenario with the IR/regalloc verifier live and report
    // its overhead. The verifier is a pure observer, so the run must
    // reproduce the unverified run's determinism fields bit-exactly —
    // hard-enforced here, since any drift would mean verification
    // changed engine semantics and the "verification is free to turn
    // on" contract (docs/analysis.md) is broken.
    {
        const Scenario &sc = scenarios[3];  // mixed_464.h264ref
        std::fprintf(stderr,
                     "  running %-20s (verify:on, informational) "
                     "...\n",
                     sc.name);
        const RunOutcome plain = runScenario(sc, true);
        const RunOutcome verified = runScenario(sc, true, true);
        fatal_if(!verified.verified || plain.verified,
                 "verify A/B wiring broken: verified run reports "
                 "verifyIr=%d, plain run %d",
                 verified.verified ? 1 : 0, plain.verified ? 1 : 0);
        fatal_if(verified.result.guestRetired !=
                         plain.result.guestRetired ||
                     verified.result.cycles != plain.result.cycles ||
                     verified.stats.records != plain.stats.records,
                 "IR verification changed determinism fields on %s: "
                 "guest %llu/%llu cycles %llu/%llu records %llu/%llu "
                 "(the verifier must be a pure observer)",
                 sc.name,
                 static_cast<unsigned long long>(
                     verified.result.guestRetired),
                 static_cast<unsigned long long>(
                     plain.result.guestRetired),
                 static_cast<unsigned long long>(
                     verified.result.cycles),
                 static_cast<unsigned long long>(plain.result.cycles),
                 static_cast<unsigned long long>(
                     verified.stats.records),
                 static_cast<unsigned long long>(plain.stats.records));
        std::fprintf(stderr,
                     "  verify overhead %s: off=%.3fs on=%.3fs "
                     "(%.1f%%; determinism fields bit-identical)\n",
                     sc.name, plain.seconds, verified.seconds,
                     100.0 * (verified.seconds / plain.seconds - 1.0));
    }

    // Burst on/off A/B (timings informational, equivalence enforced):
    // re-run the translated and dense_loop scenarios on the event core
    // with the burst dispatcher disabled and hard-fail unless every
    // measured quantity is bit-identical to the bursting run — the
    // "burst dispatch is pure acceleration" contract
    // (docs/timing-model.md §"Burst dispatch"), checked on every
    // harness run over both a low-coverage workload (serial chains;
    // the predicate must reject soundly) and the structural
    // high-coverage one (whole-kernel bursts must retire identically).
    for (const Scenario *psc : {&scenarios[1], &scenarios[2]}) {
        const Scenario &sc = *psc;
        std::fprintf(stderr,
                     "  running %-20s (burst A/B) ...\n", sc.name);
        const RunOutcome with = runScenario(sc, true);
        const RunOutcome without =
            runScenario(sc, true, false, false);
        fatal_if(!with.burst || without.burst,
                 "burst A/B wiring broken: burst-on run reports "
                 "burst=%d, burst-off run %d",
                 with.burst ? 1 : 0, without.burst ? 1 : 0);
        fatal_if(with.result.guestRetired !=
                     without.result.guestRetired,
                 "burst dispatch changed guest_retired on %s: "
                 "%llu != %llu",
                 sc.name,
                 static_cast<unsigned long long>(
                     with.result.guestRetired),
                 static_cast<unsigned long long>(
                     without.result.guestRetired));
        const std::string diff =
            timing::diffStats(without.stats, with.stats);
        fatal_if(!diff.empty(),
                 "burst dispatch diverged from the plain event core "
                 "on %s:\n%s",
                 sc.name, diff.c_str());
        std::fprintf(stderr,
                     "  burst a/b %s: off=%.3fs on=%.3fs (%.2fx; "
                     "burst_fraction=%.3f; stats bit-identical)\n",
                     sc.name, without.seconds, with.seconds,
                     without.seconds / with.seconds,
                     with.stats.burstFraction());
    }

    reporter.write();
    return 0;
}
