/**
 * @file
 * Simulator-throughput harness: measures host speed (process-CPU
 * time, robust on shared machines) of the engine's hottest execution
 * modes (pure interpretation, steady-state translated execution, and
 * the default mixed pipeline) in guest-MIPS and host-records/s, and
 * emits BENCH_engine.json so every future PR has a perf trajectory to
 * compare against.
 *
 * Besides throughput, each scenario reports its simulated-cycle count
 * and per-component metric fingerprint on stderr; these must be
 * bit-identical across simulator-speed optimizations (the engine is
 * deterministic, so any change in them is a semantics change, not an
 * optimization).
 *
 * The baseline_* constants below were measured in this same PR, at
 * the commit immediately before the hot-path overhaul (two-level page
 * directory, code-store lookup cache, batched timing records, decode
 * cache), with the identical harness, budgets, and build flags.
 */

#include <cinttypes>

#include "bench_util.hh"
#include "sim/system.hh"
#include "workloads/params.hh"

int
main(int argc, char **argv)
{
    using namespace darco;
    // Budgets are fixed per scenario so results stay comparable
    // across PRs; parse() still provides --help and arg validation.
    (void)bench::BenchArgs::parse(argc, argv);

    bench::ThroughputReporter reporter("engine_speed");

    struct Scenario
    {
        const char *name;
        const char *workload;
        uint64_t budget;
        bool interpretOnly;
        uint32_t sbThreshold;
        double baselineGuestMips;
        double baselineHostInstPerSec;
    };

    // Baselines: pre-optimization engine (seed src/, Release build,
    // no IPO/PGO), same harness and budgets, median of 6 interleaved
    // A/B rounds on the same machine (process CPU time).
    const Scenario scenarios[] = {
        {"interpreter", "464.h264ref", 250'000, true, 300,
         0.947, 18.0e6},
        {"translated", "464.h264ref", 2'000'000, false, 300,
         9.093, 19.8e6},
        {"mixed_464.h264ref", "464.h264ref", 1'000'000, false, 1000,
         7.802, 19.9e6},
    };

    for (const Scenario &sc : scenarios) {
        sim::SimConfig cfg;
        cfg.guestBudget = sc.budget;
        cfg.tol.bbToSbThreshold = sc.sbThreshold;
        if (sc.interpretOnly)
            cfg.tol.imToBbThreshold = 0xFFFFFFFFu;

        sim::System sys(cfg);
        sys.load(workloads::buildBenchmark(
            *workloads::findBenchmark(sc.workload)));

        std::fprintf(stderr, "  running %-20s ...\n", sc.name);
        bench::CpuTimer timer;
        const sim::SystemResult res = sys.run();
        const double secs = timer.seconds();

        const timing::PipeStats &ps = sys.combinedStats();
        bench::ThroughputSample sample;
        sample.name = sc.name;
        sample.guestRetired = res.guestRetired;
        sample.hostRecords = ps.records;
        sample.cycles = res.cycles;
        sample.seconds = secs;
        reporter.add(sample);
        if (sc.baselineGuestMips > 0) {
            reporter.addBaseline(sc.name, sc.baselineGuestMips,
                                 sc.baselineHostInstPerSec);
        }

        // Determinism fingerprint: simulated quantities only (no wall
        // clock). Must not change across speed optimizations.
        std::fprintf(
            stderr,
            "  fingerprint %s: guest=%" PRIu64 " records=%" PRIu64
            " cycles=%" PRIu64 " l1d=%" PRIu64 "/%" PRIu64
            " l1i=%" PRIu64 "/%" PRIu64 " l2=%" PRIu64 "/%" PRIu64
            " tlb=%" PRIu64 "/%" PRIu64 " bp=%" PRIu64 "/%" PRIu64
            " ipc=%.6f\n",
            sc.name, res.guestRetired, ps.records, res.cycles,
            ps.l1d.accesses, ps.l1d.misses, ps.l1i.accesses,
            ps.l1i.misses, ps.l2.accesses, ps.l2.misses,
            ps.tlb.accesses, ps.tlb.l1Misses, ps.bp.branches,
            ps.bp.mispredicts, ps.ipc());
    }

    reporter.write();
    return 0;
}
