/**
 * @file
 * Figure 10 regeneration: performance difference when TOL and the
 * application do not interact on the shared microarchitectural
 * resources. For each benchmark the same functional execution feeds
 * three timing instances — combined, TOL-only and APP-only — and the
 * isolated cycle counts are reported relative to the combined run's
 * attributed cycles (w/o vs w/).
 *
 * Paper shapes: SPEC INT degrades ~10% from interaction (TOL ~4.2%,
 * application ~5.8%), SPEC FP ~3%; lbm-like benchmarks ~0%;
 * perlbench-like up to ~20%.
 */

#include "bench_util.hh"

using namespace darco;
using bench::BenchArgs;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    sim::MetricsOptions options;
    options.tolOnlyPipe = true;
    options.appOnlyPipe = true;
    const auto all = bench::runSweep(args, options);

    auto is_outlier = [](const std::string &name) {
        return name == "470.lbm" || name == "007.jpg2000enc" ||
               name == "107.novis_ragdoll" || name == "400.perlbench";
    };

    std::printf("=== Figure 10: relative cycles without interaction "
                "(w/o / w/) ===\n");
    Table t({"benchmark", "APP w/o ratio", "TOL w/o ratio",
             "degradation%", "APP part%", "TOL part%"});
    for (const sim::BenchMetrics &m : all) {
        const bool avg_row = m.suite.rfind("AVG", 0) == 0;
        if (!avg_row && !is_outlier(m.name) && !args.csv)
            continue;
        const double degr = m.appDegradation() + m.tolDegradation();
        t.beginRow();
        t.add(m.name);
        t.addf("%.3f", m.relAppWithout());
        t.addf("%.3f", m.relTolWithout());
        t.addf("%.1f", 100.0 * degr);
        t.addf("%.1f", 100.0 * m.appDegradation());
        t.addf("%.1f", 100.0 * m.tolDegradation());
    }
    bench::renderTable(t, args);
    return 0;
}
