/**
 * @file
 * Trace round-trip gate (the CI job behind it captures each of the
 * four suites, replays, and fails on any determinism-field
 * mismatch): for one representative benchmark per suite — or a whole
 * suite / every benchmark with the usual filters — run the synthetic
 * workload live with capture enabled, replay the written trace
 * through `source://trace/...`, and require the replay to be
 * bit-identical: SystemResult fields, every TOL activity counter
 * (tol::diffTolStats) and every timing-pipeline counter
 * (timing::diffStats) must match the live run exactly, and both runs
 * must match the pins recorded inside the trace. Exit 0 = identical,
 * 1 = divergence.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/system.hh"
#include "workloads/source.hh"

namespace {

using namespace darco;

/** Per-suite representatives (same set as ablation_thresholds). */
const char *kSuiteReps[] = {
    "464.h264ref",           // SPEC INT
    "436.cactusADM",         // SPEC FP
    "104.novis_explosions",  // Physics
    "005.h264enc",           // Media
};

/** One capture -> replay round trip; returns true when identical. */
bool
roundTrip(const workloads::Workload &live_workload, uint64_t budget)
{
    const std::string trace_path =
        "roundtrip_" + live_workload.name + ".dtrc";

    std::fprintf(stderr, "  %-24s capture -> %s\n",
                 live_workload.name.c_str(), trace_path.c_str());
    sim::MetricsOptions live_options;
    bench::applyBudget(live_options, budget);
    live_options.captureTracePath = trace_path;
    const sim::RunSnapshot live =
        sim::snapshotRun(live_workload, live_options);

    const workloads::Workload replayed =
        workloads::resolveWorkload(workloads::traceUri(trace_path));
    fatal_if(!replayed.capturedMeta || !replayed.capturedPins,
             "%s: trace lost its recipe or pins", trace_path.c_str());
    // snapshotRun re-applies the trace's capture recipe itself.
    const sim::RunSnapshot replay =
        sim::snapshotRun(replayed, sim::MetricsOptions{});

    bool ok = true;
    auto check_u64 = [&](const char *what, uint64_t a, uint64_t b) {
        if (a != b) {
            std::fprintf(stderr,
                         "  MISMATCH %s.%s: live %llu != replay %llu\n",
                         live_workload.name.c_str(), what,
                         static_cast<unsigned long long>(a),
                         static_cast<unsigned long long>(b));
            ok = false;
        }
    };
    check_u64("guest_retired", live.result.guestRetired,
              replay.result.guestRetired);
    check_u64("sim_cycles", live.result.cycles, replay.result.cycles);
    check_u64("host_records", live.stats.records,
              replay.stats.records);

    const std::string pipe_diff =
        timing::diffStats(live.stats, replay.stats);
    if (!pipe_diff.empty()) {
        std::fprintf(stderr, "  MISMATCH %s pipeline stats:\n%s",
                     live_workload.name.c_str(), pipe_diff.c_str());
        ok = false;
    }
    const std::string tol_diff =
        tol::diffTolStats(live.tolStats, replay.tolStats);
    if (!tol_diff.empty()) {
        std::fprintf(stderr, "  MISMATCH %s TOL stats:\n%s",
                     live_workload.name.c_str(), tol_diff.c_str());
        ok = false;
    }

    // Both runs against the pins recorded inside the trace file.
    const trace::TracePins &pins = *replayed.capturedPins;
    check_u64("pins.guest_retired", pins.guestRetired,
              replay.result.guestRetired);
    check_u64("pins.sim_cycles", pins.simCycles, replay.result.cycles);
    check_u64("pins.host_records", pins.hostRecords,
              replay.stats.records);
    check_u64("pins.dyn_im", pins.dynIm, replay.tolStats.dynIm);
    check_u64("pins.dyn_bbm", pins.dynBbm, replay.tolStats.dynBbm);
    check_u64("pins.dyn_sbm", pins.dynSbm, replay.tolStats.dynSbm);
    check_u64("pins.sbs_created", pins.sbsCreated,
              replay.tolStats.sbsCreated);

    if (ok) {
        std::fprintf(stderr,
                     "  %-24s OK  guest=%llu cycles=%llu records=%llu\n",
                     live_workload.name.c_str(),
                     static_cast<unsigned long long>(
                         replay.result.guestRetired),
                     static_cast<unsigned long long>(
                         replay.result.cycles),
                     static_cast<unsigned long long>(
                         replay.stats.records));
        std::remove(trace_path.c_str());
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    if (args.budget > 2'000'000)
        args.budget = 2'000'000;
    // Unless filters say otherwise, run the four suite reps.
    const bool default_set =
        args.suite.empty() && args.benchmark.empty();

    std::vector<workloads::Workload> selected;
    if (default_set) {
        for (const char *name : kSuiteReps) {
            selected.push_back(workloads::resolveWorkload(
                workloads::syntheticUri(name)));
        }
    } else {
        selected = bench::selectWorkloads(args);
    }

    unsigned failures = 0;
    for (const workloads::Workload &w : selected) {
        fatal_if(w.capturedMeta.has_value(),
                 "%s: the round-trip gate captures live synthetic "
                 "runs; pass the synthetic name, not a trace",
                 w.uri.c_str());
        if (!roundTrip(w, args.budget))
            ++failures;
    }

    if (failures) {
        std::fprintf(stderr,
                     "trace round-trip FAILED on %u workload(s)\n",
                     failures);
        return 1;
    }
    std::printf("trace round-trip OK (%zu workloads, budget %llu)\n",
                selected.size(),
                static_cast<unsigned long long>(args.budget));
    return 0;
}
