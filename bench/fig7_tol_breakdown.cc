/**
 * @file
 * Figure 7 regeneration: breakdown of execution time into the main
 * TOL modules — TOL others (dispatch/transitions), IM (interpreter),
 * BBM (translation + profiling), SBM (superblock optimization),
 * Chaining, and Code-cache lookups — plus the secondary-axis series
 * (dynamic guest indirect branches, log scale in the paper).
 *
 * Paper shapes: indirect-branch-heavy applications (perlbench-like)
 * are dominated by Code$ lookups + TOL-others; low-repetition
 * applications by IM/BBM; near-threshold applications by SBM.
 */

#include "bench_util.hh"

using namespace darco;
using bench::BenchArgs;
using timing::Module;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    sim::MetricsOptions options;
    const auto all = bench::runSweep(args, options);

    std::printf("=== Figure 7: TOL execution-time breakdown "
                "(%% of TOL time) ===\n");
    Table t({"benchmark", "suite", "TOLothers%", "IM%", "BBM%", "SBM%",
             "Chain%", "Code$lookup%", "TOL-of-total%",
             "indirect branches"});
    for (const sim::BenchMetrics &m : all) {
        double tol_total = 0;
        for (unsigned mod = 1; mod < timing::kNumModules; ++mod)
            tol_total += m.moduleCycles[mod];
        const double denom = std::max(tol_total, 1.0);
        auto pct = [&](Module mod) {
            return 100.0 * m.moduleCycles[static_cast<unsigned>(mod)] /
                   denom;
        };
        t.beginRow();
        t.add(m.name);
        t.add(m.suite);
        t.addf("%.1f", pct(Module::TolOther));
        t.addf("%.1f", pct(Module::IM));
        t.addf("%.1f", pct(Module::BBM));
        t.addf("%.1f", pct(Module::SBM));
        t.addf("%.1f", pct(Module::Chaining));
        t.addf("%.1f", pct(Module::Lookup));
        t.addf("%.1f", 100.0 * m.tolOverheadFrac());
        t.addf("%llu", static_cast<unsigned long long>(m.guestIndirect));
    }
    bench::renderTable(t, args);
    return 0;
}
