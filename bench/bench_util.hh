/**
 * @file
 * Shared harness for the figure-regeneration benches: argument
 * parsing (budget, suite filter, CSV output) and suite sweeps with
 * per-suite averages, matching the paper's figure layout (per-
 * benchmark bars in suite order followed by the four suite averages).
 */

#ifndef DARCO_BENCH_BENCH_UTIL_HH
#define DARCO_BENCH_BENCH_UTIL_HH

#include <ctime>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "runner/batch_runner.hh"
#include "sim/metrics.hh"
#include "workloads/params.hh"
#include "workloads/source.hh"

namespace darco::bench {

struct BenchArgs
{
    uint64_t budget = 4'000'000;
    std::string suite;      ///< empty = all suites
    std::string benchmark;  ///< empty = all benchmarks
    bool csv = false;
    /**
     * Worker threads for the sweep: 0 (default) = one per hardware
     * thread, 1 = the serial reference path, N = a fixed pool. The
     * engine is deterministic and every job independent, so results
     * are bit-identical at any value (tests/test_batch_runner.cc).
     */
    unsigned jobs = 0;
    /**
     * Fault tolerance for long sweeps (docs/robustness.md): per-job
     * wall-clock watchdog, transient-failure retries, and a crash-
     * resumable journal. All off by default — and they MUST stay off
     * for committed perf baselines (bench/check_perf.py).
     */
    uint64_t timeoutMs = 0;
    unsigned retries = 0;
    std::string journal;
    /**
     * Campaign scale-out (docs/campaigns.md): a stable job-index
     * shard of the sweep (`--shard=K/N`), a content-addressed result
     * cache directory shared between runs and shards
     * (`--cache-dir=`), and the fraction of cache hits to
     * re-simulate and compare bit-for-bit (`--verify-hits=`). All
     * off by default — and the cache MUST stay off for committed
     * perf baselines (bench/check_perf.py).
     */
    runner::ShardSpec shard;
    std::string cacheDir;
    double verifyHits = 0.0;

    static BenchArgs
    parse(int argc, char **argv)
    {
        BenchArgs args;
        if (const char *env = std::getenv("DARCO_BUDGET"))
            args.budget = std::strtoull(env, nullptr, 10);
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&](const char *prefix) -> const char * {
                const size_t len = std::strlen(prefix);
                if (arg.rfind(prefix, 0) == 0)
                    return arg.c_str() + len;
                return nullptr;
            };
            if (const char *v = value("--budget="))
                args.budget = std::strtoull(v, nullptr, 10);
            else if (const char *v2 = value("--suite="))
                args.suite = v2;
            else if (const char *v3 = value("--benchmark="))
                args.benchmark = v3;
            else if (const char *v4 = value("--jobs="))
                args.jobs = static_cast<unsigned>(
                    std::strtoul(v4, nullptr, 10));
            else if (const char *v5 = value("--timeout="))
                args.timeoutMs = std::strtoull(v5, nullptr, 10);
            else if (const char *v6 = value("--retries="))
                args.retries = static_cast<unsigned>(
                    std::strtoul(v6, nullptr, 10));
            else if (const char *v7 = value("--journal="))
                args.journal = v7;
            else if (const char *v8 = value("--shard=")) {
                char *end = nullptr;
                args.shard.index = static_cast<unsigned>(
                    std::strtoul(v8, &end, 10));
                fatal_if(!end || *end != '/',
                         "--shard expects K/N (e.g. --shard=0/3)");
                args.shard.count = static_cast<unsigned>(
                    std::strtoul(end + 1, nullptr, 10));
                fatal_if(args.shard.count == 0 ||
                             args.shard.index >= args.shard.count,
                         "--shard=%s: index must be < count", v8);
            }
            else if (const char *v9 = value("--cache-dir="))
                args.cacheDir = v9;
            else if (const char *v10 = value("--verify-hits="))
                args.verifyHits = std::strtod(v10, nullptr);
            else if (arg == "--csv")
                args.csv = true;
            else if (arg == "--help" || arg == "-h") {
                std::printf(
                    "options: --budget=N --suite=NAME --benchmark=NAME "
                    "--jobs=N --csv\n         --timeout=MS --retries=N "
                    "--journal=PATH\n  suites: 'SPEC INT', 'SPEC FP', "
                    "'Physics', 'Media'\n  benchmark: a synthetic name "
                    "or a workload URI\n    (source://synthetic/<name>, "
                    "source://trace/<file>)\n  jobs: sweep worker "
                    "threads (0 = hardware threads, 1 = serial\n    "
                    "reference; results are bit-identical either way)\n"
                    "  timeout/retries/journal: per-job watchdog, "
                    "transient-failure\n    retries, crash-resumable "
                    "journal (batch path only; keep off\n    for "
                    "committed perf baselines)\n"
                    "  --shard=K/N --cache-dir=DIR --verify-hits=F: "
                    "campaign scale-out\n    (stable job-index shard, "
                    "content-addressed result cache,\n    fraction of "
                    "hits re-simulated and compared bit-for-bit;\n    "
                    "docs/campaigns.md — keep the cache off for perf "
                    "baselines)\n"
                    "  env: DARCO_BUDGET\n");
                std::exit(0);
            } else {
                fatal("unknown argument: %s", arg.c_str());
            }
        }
        return args;
    }
};

/**
 * The shared System/config wiring every bench repeats: the guest
 * budget plus the budget-scaled BB->SB promotion threshold. Apply
 * before per-bench config tweaks (a grid point that overrides the
 * threshold simply assigns over it).
 */
inline void
applyBudget(sim::MetricsOptions &options, uint64_t budget)
{
    options.guestBudget = budget;
    options.tolConfig.bbToSbThreshold =
        sim::scaledSbThreshold(budget);
}

/** Fresh MetricsOptions pre-wired for the parsed args. */
inline sim::MetricsOptions
makeMetricsOptions(const BenchArgs &args)
{
    sim::MetricsOptions options;
    applyBudget(options, args.budget);
    return options;
}

/**
 * Workload URIs selected by the args, in figure order, without
 * resolving them (resolution can be expensive — a trace URI reads
 * and checksums the whole file — so the parallel sweep leaves it to
 * the workers). `--benchmark=` accepts a full workload URI (any
 * registered scheme) or a bare synthetic benchmark name.
 */
inline std::vector<std::string>
selectWorkloadUris(const BenchArgs &args)
{
    std::vector<std::string> uris;
    if (workloads::isSourceUri(args.benchmark)) {
        uris.push_back(args.benchmark);
        return uris;
    }
    for (const workloads::BenchParams &p : workloads::allBenchmarks()) {
        if (!args.suite.empty() && p.suite != args.suite)
            continue;
        if (!args.benchmark.empty() && p.name != args.benchmark)
            continue;
        uris.push_back(workloads::syntheticUri(p.name));
    }
    fatal_if(uris.empty(), "no benchmarks match the filters");
    return uris;
}

/** The selected workloads, resolved through the source registry. */
inline std::vector<workloads::Workload>
selectWorkloads(const BenchArgs &args)
{
    std::vector<workloads::Workload> selected;
    for (const std::string &uri : selectWorkloadUris(args))
        selected.push_back(workloads::resolveWorkload(uri));
    return selected;
}

/**
 * Run the selected workloads and append the four suite averages.
 *
 * `args.jobs` picks the execution path: 1 runs the serial reference
 * loop on the calling thread; any other value routes the sweep
 * through runner::BatchRunner on a worker pool (0 = one worker per
 * hardware thread). Every job is an independent deterministic
 * System, so the returned metrics are bit-identical across paths
 * and pool sizes — only wall clock changes
 * (tests/test_batch_runner.cc enforces this).
 *
 * `--shard=K/N` and `--cache-dir=` route through the batch path even
 * at --jobs=1 (sharding and the result cache are BatchRunner
 * features). A sharded sweep returns only this shard's metrics;
 * suite averages appear only when the shard happens to cover a whole
 * suite.
 */
inline std::vector<sim::BenchMetrics>
runSweep(const BenchArgs &args, sim::MetricsOptions options,
         bool progress = true)
{
    applyBudget(options, args.budget);
    std::vector<sim::BenchMetrics> all;
    // Sharding and the result cache live in the batch path; either
    // one routes the sweep through BatchRunner even at --jobs=1.
    const bool campaign =
        args.shard.count > 1 || !args.cacheDir.empty();
    if (args.jobs == 1 && !campaign) {
        // Serial reference path: unchanged semantics, no threads.
        for (const workloads::Workload &w : selectWorkloads(args)) {
            if (progress) {
                std::fprintf(stderr, "  running %-24s ...\n",
                             w.name.c_str());
            }
            sim::MetricsOptions per_workload = options;
            sim::applyCaptureRecipe(per_workload, w);
            all.push_back(sim::runWorkload(w, per_workload));
        }
    } else {
        // Workers resolve their own jobs (a trace URI reads the
        // whole file), so the sweep only selects URIs here.
        std::vector<runner::BatchJob> jobs;
        for (std::string &uri : selectWorkloadUris(args)) {
            runner::BatchJob job;
            job.workload = std::move(uri);
            job.options = options;
            // The serial reference path (runWorkload) does not
            // verify in-file capture pins, so the parallel path
            // must not either — the two would otherwise diverge on
            // a stale trace (pin enforcement lives in the trace
            // gates and engine_speed, not in figure sweeps).
            job.checkCapturedPins = false;
            jobs.push_back(std::move(job));
        }
        runner::BatchConfig config;
        config.workers = args.jobs;
        config.timeoutMs = args.timeoutMs;
        config.retries = args.retries;
        config.journalPath = args.journal;
        config.shard = args.shard;
        config.cacheDir = args.cacheDir;
        config.verifyHitFraction = args.verifyHits;
        if (progress) {
            config.onJobDone = [](size_t, const runner::JobResult &r) {
                const char *via =
                    r.fromJournal ? "(from journal) "
                    : r.cacheStatus == runner::CacheStatus::Hit
                        ? "(cache hit) "
                    : r.deduped ? "(deduped) "
                                : "";
                std::fprintf(stderr, "  finished %-24s %s%s\n",
                             r.name.empty() ? r.uri.c_str()
                                            : r.name.c_str(),
                             via, r.ok ? "" : "(FAILED)");
            };
        }
        const runner::BatchRunner pool(config);
        if (progress) {
            std::fprintf(stderr,
                         "  sweeping %zu workloads on %u workers\n",
                         jobs.size(), pool.effectiveWorkers(jobs.size()));
        }
        for (runner::JobResult &r : pool.run(jobs)) {
            // Out-of-shard slots were never executed: another shard
            // of the same campaign owns them.
            if (r.skipped)
                continue;
            fatal_if(!r.ok, "sweep job %s failed (%s after %u "
                     "attempt(s)):\n%s",
                     r.uri.c_str(), r.runError.name(), r.attempts,
                     r.error.c_str());
            all.push_back(std::move(r.metrics));
        }
    }

    // Suite averages (only when the full suite ran).
    for (const char *suite : {"SPEC INT", "SPEC FP", "Physics", "Media"}) {
        std::vector<sim::BenchMetrics> members;
        for (const sim::BenchMetrics &m : all) {
            if (m.suite == suite)
                members.push_back(m);
        }
        if (!members.empty() &&
            members.size() == workloads::suiteBenchmarks(suite).size()) {
            all.push_back(sim::averageMetrics(
                members, std::string("AVG ") + suite));
        }
    }
    return all;
}

inline void
renderTable(const Table &table, const BenchArgs &args)
{
    if (args.csv)
        table.renderCsv();
    else
        table.render();
}

// ---------------------------------------------------------------------
// Simulator-throughput reporting (machine-readable perf trajectory)
// ---------------------------------------------------------------------

/**
 * Process-CPU-time stopwatch. CPU time (not wall clock) keeps the
 * perf trajectory comparable when the measuring machine is shared;
 * the simulator is single-threaded, so the two agree on an idle box.
 */
class CpuTimer
{
  public:
    CpuTimer() : start(sample()) {}

    double seconds() const { return sample() - start; }

  private:
    static double
    sample()
    {
        timespec ts{};
        clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
    }

    double start;
};

/** One measured engine scenario (e.g. interpreter-only execution). */
struct ThroughputSample
{
    std::string name;
    uint64_t guestRetired = 0;   ///< guest instructions simulated
    uint64_t hostRecords = 0;    ///< host-instruction records timed
    uint64_t cycles = 0;         ///< simulated cycles (determinism key)
    double seconds = 0;          ///< host process-CPU seconds
    /**
     * Which timing core actually advanced the clock in the timed run
     * ("event" / "reference"), recorded from the live pipeline — not
     * from the requested config — so a silent core switch shows up
     * in the committed JSON and fails bench/check_perf.py.
     */
    std::string timingCore;
    /**
     * Same scenario re-run on the cycle-stepped reference timing
     * core (0 = not measured): the in-process A/B that backs the
     * event_core_speedup field.
     */
    double steppedSeconds = 0;
    /**
     * How the scenario was executed: "serial" (alone on the process,
     * the only mode whose timings are comparable across PRs) or
     * "parallel" (shared the process with concurrent jobs).
     * bench/check_perf.py requires "serial" on every committed
     * engine_speed scenario — see the rationale there.
     */
    std::string execution = "serial";
    /**
     * Whether characterization profiling (MetricsOptions::profile)
     * was live during the timed run: "off" or "on". Profiling adds a
     * stack-distance update per memory access, so a committed perf
     * baseline with profiling on would not be comparable to any
     * other; bench/check_perf.py requires "off" on every committed
     * and fresh engine_speed scenario.
     */
    std::string profile = "off";
    /**
     * Whether the IR/regalloc verifier (TolConfig::verifyIr) was live
     * during the timed run: "off" or "on". Verification is a pure
     * observer (determinism fields cannot change), but it re-derives
     * dataflow for every translation, so a committed perf baseline
     * with it on times the verifier on top of the engine;
     * bench/check_perf.py requires "off" on every committed and fresh
     * engine_speed scenario.
     */
    std::string verify = "off";
    /**
     * Whether the event core's burst dispatcher was armed during the
     * timed run: "on" or "off", read back from the live pipeline
     * (timing::Pipeline::burstDispatchEnabled), not the requested
     * config. Burst dispatch is bit-identical by construction, but a
     * different dispatch engine is a different experiment, so it is
     * a determinism field in bench/check_perf.py (committed AND
     * fresh must both say "on").
     */
    std::string burst = "on";
    /**
     * Fraction of simulated cycles the burst dispatcher retired
     * (PipeStats::burstFraction). Purely informational for most
     * scenarios; check_perf.py enforces a floor on the dense
     * scenarios built to sit in the burst regime, so a predicate
     * regression that silently stops bursts from forming fails CI.
     */
    double burstFraction = 0;
    /**
     * Whether the scenario could have been satisfied from a result
     * cache: "off" or "on". A cache hit skips simulation entirely,
     * so a committed perf baseline measured with the cache on would
     * time file I/O instead of the engine; bench/check_perf.py
     * requires "off" on every committed and fresh engine_speed
     * scenario.
     */
    std::string cache = "off";

    /** Guest MIPS achieved (forward progress per host second). */
    double
    guestMips() const
    {
        return seconds > 0
            ? static_cast<double>(guestRetired) / seconds / 1e6 : 0;
    }

    /** Host-instruction records timed per host second. */
    double
    hostInstPerSec() const
    {
        return seconds > 0
            ? static_cast<double>(hostRecords) / seconds : 0;
    }

    /** Simulated cycles the timing core advanced per host second. */
    double
    simCyclesPerSec() const
    {
        return seconds > 0
            ? static_cast<double>(cycles) / seconds : 0;
    }

    /**
     * Simulated cycles per timed record (a determinism quantity:
     * workload character, not host speed).
     */
    double
    cyclesPerRecord() const
    {
        return hostRecords > 0
            ? static_cast<double>(cycles) /
              static_cast<double>(hostRecords)
            : 0;
    }
};

/**
 * Collects ThroughputSamples and emits BENCH_engine.json so future
 * PRs have a perf trajectory to compare against. If a baseline file
 * (same schema, recorded at an earlier engine state) is supplied, each
 * scenario additionally reports its speedup versus the baseline.
 */
class ThroughputReporter
{
  public:
    explicit ThroughputReporter(std::string engine_label)
        : label(std::move(engine_label))
    {}

    void add(ThroughputSample sample) { samples.push_back(sample); }

    /** Baseline guest-MIPS for a scenario ( <= 0 means unknown). */
    void
    addBaseline(const std::string &scenario, double guest_mips,
                double host_inst_per_sec)
    {
        baselines.push_back({scenario, guest_mips, host_inst_per_sec});
    }

    void
    write(const char *path = "BENCH_engine.json") const
    {
        FILE *out = std::fopen(path, "w");
        fatal_if(!out, "cannot open %s for writing", path);
        std::fprintf(out, "{\n  \"bench\": \"%s\",\n", label.c_str());
        std::fprintf(out, "  \"scenarios\": {\n");
        for (size_t i = 0; i < samples.size(); ++i) {
            const ThroughputSample &s = samples[i];
            std::fprintf(out,
                         "    \"%s\": {\n"
                         "      \"guest_retired\": %llu,\n"
                         "      \"host_records\": %llu,\n"
                         "      \"sim_cycles\": %llu,\n"
                         "      \"cycles_per_host_record\": %.4f,\n"
                         "      \"seconds\": %.6f,\n"
                         "      \"guest_mips\": %.3f,\n"
                         "      \"host_inst_per_sec\": %.0f,\n"
                         "      \"sim_cycles_per_sec\": %.0f",
                         s.name.c_str(),
                         static_cast<unsigned long long>(s.guestRetired),
                         static_cast<unsigned long long>(s.hostRecords),
                         static_cast<unsigned long long>(s.cycles),
                         s.cyclesPerRecord(), s.seconds, s.guestMips(),
                         s.hostInstPerSec(), s.simCyclesPerSec());
            if (!s.timingCore.empty()) {
                std::fprintf(out, ",\n      \"timing_core\": \"%s\"",
                             s.timingCore.c_str());
            }
            if (!s.execution.empty()) {
                std::fprintf(out, ",\n      \"execution\": \"%s\"",
                             s.execution.c_str());
            }
            if (!s.profile.empty()) {
                std::fprintf(out, ",\n      \"profile\": \"%s\"",
                             s.profile.c_str());
            }
            if (!s.verify.empty()) {
                std::fprintf(out, ",\n      \"verify\": \"%s\"",
                             s.verify.c_str());
            }
            if (!s.cache.empty()) {
                std::fprintf(out, ",\n      \"cache\": \"%s\"",
                             s.cache.c_str());
            }
            if (!s.burst.empty()) {
                std::fprintf(out,
                             ",\n      \"burst\": \"%s\",\n"
                             "      \"burst_fraction\": %.4f",
                             s.burst.c_str(), s.burstFraction);
            }
            if (s.steppedSeconds > 0) {
                std::fprintf(out,
                             ",\n      \"stepped_seconds\": %.6f,\n"
                             "      \"event_core_speedup\": %.2f",
                             s.steppedSeconds,
                             s.steppedSeconds / s.seconds);
            }
            for (const Baseline &b : baselines) {
                if (b.scenario != s.name || b.guestMips <= 0)
                    continue;
                std::fprintf(out,
                             ",\n      \"baseline_guest_mips\": %.3f,\n"
                             "      \"baseline_host_inst_per_sec\": %.0f,\n"
                             "      \"speedup_vs_baseline\": %.2f",
                             b.guestMips, b.hostInstPerSec,
                             s.guestMips() / b.guestMips);
            }
            std::fprintf(out, "\n    }%s\n",
                         i + 1 < samples.size() ? "," : "");
        }
        std::fprintf(out, "  }\n}\n");
        std::fclose(out);
        std::fprintf(stderr, "wrote %s\n", path);
    }

  private:
    struct Baseline
    {
        std::string scenario;
        double guestMips;
        double hostInstPerSec;
    };

    std::string label;
    std::vector<ThroughputSample> samples;
    std::vector<Baseline> baselines;
};

} // namespace darco::bench

#endif // DARCO_BENCH_BENCH_UTIL_HH
