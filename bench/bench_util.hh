/**
 * @file
 * Shared harness for the figure-regeneration benches: argument
 * parsing (budget, suite filter, CSV output) and suite sweeps with
 * per-suite averages, matching the paper's figure layout (per-
 * benchmark bars in suite order followed by the four suite averages).
 */

#ifndef DARCO_BENCH_BENCH_UTIL_HH
#define DARCO_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/metrics.hh"
#include "workloads/params.hh"

namespace darco::bench {

struct BenchArgs
{
    uint64_t budget = 4'000'000;
    std::string suite;      ///< empty = all suites
    std::string benchmark;  ///< empty = all benchmarks
    bool csv = false;

    static BenchArgs
    parse(int argc, char **argv)
    {
        BenchArgs args;
        if (const char *env = std::getenv("DARCO_BUDGET"))
            args.budget = std::strtoull(env, nullptr, 10);
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&](const char *prefix) -> const char * {
                const size_t len = std::strlen(prefix);
                if (arg.rfind(prefix, 0) == 0)
                    return arg.c_str() + len;
                return nullptr;
            };
            if (const char *v = value("--budget="))
                args.budget = std::strtoull(v, nullptr, 10);
            else if (const char *v2 = value("--suite="))
                args.suite = v2;
            else if (const char *v3 = value("--benchmark="))
                args.benchmark = v3;
            else if (arg == "--csv")
                args.csv = true;
            else if (arg == "--help" || arg == "-h") {
                std::printf(
                    "options: --budget=N --suite=NAME --benchmark=NAME "
                    "--csv\n  suites: 'SPEC INT', 'SPEC FP', 'Physics', "
                    "'Media'\n  env: DARCO_BUDGET\n");
                std::exit(0);
            } else {
                fatal("unknown argument: %s", arg.c_str());
            }
        }
        return args;
    }
};

/** Benchmarks selected by the args, in figure order. */
inline std::vector<const workloads::BenchParams *>
selectBenchmarks(const BenchArgs &args)
{
    std::vector<const workloads::BenchParams *> selected;
    for (const workloads::BenchParams &p : workloads::allBenchmarks()) {
        if (!args.suite.empty() && p.suite != args.suite)
            continue;
        if (!args.benchmark.empty() && p.name != args.benchmark)
            continue;
        selected.push_back(&p);
    }
    fatal_if(selected.empty(), "no benchmarks match the filters");
    return selected;
}

/** Run the selected benchmarks and append the four suite averages. */
inline std::vector<sim::BenchMetrics>
runSweep(const BenchArgs &args, sim::MetricsOptions options,
         bool progress = true)
{
    options.guestBudget = args.budget;
    options.tolConfig.bbToSbThreshold =
        sim::scaledSbThreshold(args.budget);
    std::vector<sim::BenchMetrics> all;
    for (const workloads::BenchParams *p : selectBenchmarks(args)) {
        if (progress)
            std::fprintf(stderr, "  running %-24s ...\n", p->name.c_str());
        all.push_back(sim::runBenchmark(*p, options));
    }

    // Suite averages (only when the full suite ran).
    for (const char *suite : {"SPEC INT", "SPEC FP", "Physics", "Media"}) {
        std::vector<sim::BenchMetrics> members;
        for (const sim::BenchMetrics &m : all) {
            if (m.suite == suite)
                members.push_back(m);
        }
        if (!members.empty() &&
            members.size() == workloads::suiteBenchmarks(suite).size()) {
            all.push_back(sim::averageMetrics(
                members, std::string("AVG ") + suite));
        }
    }
    return all;
}

inline void
renderTable(const Table &table, const BenchArgs &args)
{
    if (args.csv)
        table.renderCsv();
    else
        table.render();
}

} // namespace darco::bench

#endif // DARCO_BENCH_BENCH_UTIL_HH
