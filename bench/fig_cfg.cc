/**
 * @file
 * Static-CFG characterization bench: per-workload basic blocks,
 * static instruction mix, dominator-tree shape and natural loops
 * from the static analyzer (src/analysis/cfg.hh), cross-validated
 * against the dynamic branch profile of a real co-simulated run.
 *
 * Every run doubles as a live verification gate, mirroring
 * fig_reuse's analytic-oracle pattern: the workload executes with
 * the IR/regalloc verifier on (TolConfig::verifyIr) and the guest
 * branch stream collected from the authoritative emulator, and the
 * bench hard-fails unless (1) every dynamically observed branch PC
 * decodes to a CFG branch of the same kind and (2) the measured
 * per-branch taken/not-taken counts satisfy per-block flow
 * conservation (Kirchhoff) over the static edges — the same exact
 * invariants tests/test_analysis.cc pins under ctest, checked here
 * at bench budgets on every workload the sweep selects.
 */

#include <cinttypes>

#include "analysis/cfg.hh"
#include "bench_util.hh"
#include "sim/system.hh"

using namespace darco;
using bench::BenchArgs;

namespace an = darco::analysis;

namespace {

/** Depth of a block in the dominator tree (entry = 0); blocks
 *  unreachable over static edges report 0. */
size_t
domDepth(const an::Cfg &cfg, size_t block)
{
    size_t depth = 0;
    while (block != cfg.entryIndex && cfg.idom[block] != an::kNoIdom &&
           cfg.idom[block] != block && depth <= cfg.blocks.size()) {
        block = cfg.idom[block];
        ++depth;
    }
    return depth;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);

    struct Row
    {
        std::string name;
        std::string suite;
        an::InstMix mix;
        size_t blocks;
        size_t loops;
        size_t maxDomDepth;
        uint64_t dynBranches;
        uint64_t dynCondBranches;
        size_t dynSites;
        uint64_t retired;
    };
    std::vector<Row> rows;

    for (const workloads::Workload &w : bench::selectWorkloads(args)) {
        std::fprintf(stderr, "  analyzing %-24s ...\n", w.name.c_str());

        // Static side: the CFG must pass its own structural
        // self-check before it is allowed to judge the dynamics.
        const an::Cfg cfg = an::buildCfg(w.program);
        an::Findings f = an::verifyCfg(cfg);
        fatal_if(!f.empty(), "%s: static CFG failed self-check:\n%s",
                 w.name.c_str(), an::joinFindings(f).c_str());

        // Dynamic side: a verified, co-simulated, profiled run. The
        // guest branch stream only exists under cosim + profile (the
        // authoritative emulator replays every retired instruction),
        // and verifyIr keeps the IR/regalloc verifier gating every
        // translation of this run.
        sim::SimConfig sim_cfg;
        sim_cfg.guestBudget = args.budget;
        sim_cfg.cosim = true;
        sim_cfg.cosimStrict = true;
        sim_cfg.profile = true;
        sim_cfg.tol.bbToSbThreshold =
            sim::scaledSbThreshold(args.budget);
        fatal_if(!sim_cfg.tol.verifyIr,
                 "TolConfig::verifyIr no longer defaults on; fig_cfg "
                 "requires a verified run");
        sim::System sys(sim_cfg);
        sys.load(w);
        const sim::SystemResult res = sys.run();

        const profile::GuestBranchProfile *prof =
            sys.guestBranchProfile();
        fatal_if(!prof, "%s: co-simulated profiled run carries no "
                 "guest branch profile",
                 w.name.c_str());

        // The live cross-checks (exact, not statistical): any
        // divergence between the static CFG and the measured branch
        // stream is a hard failure.
        f = an::crossCheckBranchSites(cfg, *prof);
        fatal_if(!f.empty(),
                 "%s: dynamic branch sites diverged from the static "
                 "CFG:\n%s",
                 w.name.c_str(), an::joinFindings(f).c_str());
        f = an::crossCheckFlowConservation(cfg, *prof,
                                           sys.guestState().eip);
        fatal_if(!f.empty(),
                 "%s: flow conservation violated between the static "
                 "CFG and the measured branch counts:\n%s",
                 w.name.c_str(), an::joinFindings(f).c_str());

        size_t max_depth = 0;
        for (size_t b = 0; b < cfg.blocks.size(); ++b)
            max_depth = std::max(max_depth, domDepth(cfg, b));

        rows.push_back({w.name, w.suite, cfg.mix, cfg.blocks.size(),
                        cfg.loops.size(), max_depth,
                        prof->dynBranches, prof->dynCondBranches,
                        prof->sites.size(), res.guestRetired});
    }

    std::printf("=== Static CFG: blocks, dominators, loops ===\n");
    Table shape({"benchmark", "suite", "insts", "bytes", "blocks",
                 "loops", "domdepth", "avg insts/blk"});
    for (const Row &r : rows) {
        shape.beginRow();
        shape.add(r.name);
        shape.add(r.suite);
        shape.addf("%u", r.mix.total);
        shape.addf("%u", r.mix.codeBytes);
        shape.addf("%zu", r.blocks);
        shape.addf("%zu", r.loops);
        shape.addf("%zu", r.maxDomDepth);
        shape.addf("%.2f", static_cast<double>(r.mix.total) /
                               static_cast<double>(r.blocks));
    }
    bench::renderTable(shape, args);

    std::printf("\n=== Static instruction mix (%% of static insts; "
                "categories overlap) ===\n");
    Table mix({"benchmark", "mov%", "alu%", "load%", "store%",
               "stack%", "branch%", "cond%", "ind%", "fp%", "nop%"});
    for (const Row &r : rows) {
        const double total = r.mix.total;
        mix.beginRow();
        mix.add(r.name);
        mix.addf("%.1f", 100.0 * r.mix.moves / total);
        mix.addf("%.1f", 100.0 * r.mix.alu / total);
        mix.addf("%.1f", 100.0 * r.mix.loads / total);
        mix.addf("%.1f", 100.0 * r.mix.stores / total);
        mix.addf("%.1f", 100.0 * r.mix.stack / total);
        mix.addf("%.1f", 100.0 * r.mix.branches / total);
        mix.addf("%.1f", 100.0 * r.mix.condBranches / total);
        mix.addf("%.1f", 100.0 * r.mix.indirectBranches / total);
        mix.addf("%.1f", 100.0 * r.mix.fpOps / total);
        mix.addf("%.1f", 100.0 * r.mix.nops / total);
    }
    bench::renderTable(mix, args);

    std::printf("\n=== Dynamic agreement (co-simulated run, verifier "
                "on) ===\n");
    Table dyn({"benchmark", "retired", "dyn branches", "dyn cond",
               "sites", "static branches", "site coverage%"});
    for (const Row &r : rows) {
        dyn.beginRow();
        dyn.add(r.name);
        dyn.addf("%" PRIu64, r.retired);
        dyn.addf("%" PRIu64, r.dynBranches);
        dyn.addf("%" PRIu64, r.dynCondBranches);
        dyn.addf("%zu", r.dynSites);
        dyn.addf("%u", r.mix.branches);
        dyn.addf("%.1f", 100.0 * static_cast<double>(r.dynSites) /
                             static_cast<double>(r.mix.branches));
    }
    bench::renderTable(dyn, args);

    std::printf("\ncfg cross-check: dynamic branch sites and flow "
                "conservation matched the static CFG exactly on all "
                "%zu workload(s)\n", rows.size());
    return 0;
}
