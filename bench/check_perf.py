#!/usr/bin/env python3
"""Perf-tracking gate: compare a freshly measured BENCH_engine.json
against the committed one (ROADMAP "Perf tracking").

The gate iterates the COMMITTED baseline, not the fresh run, so a
scenario that disappears from the fresh measurement (dropped from the
harness, or skipped by a crash) is a hard failure rather than a
silent shrink of the compared set. The reverse holds too: a fresh
scenario with no committed baseline fails, so new harness scenarios
must land with a regenerated committed JSON that gates them.

Checks per baseline scenario:

- Determinism fields (guest_retired, host_records, sim_cycles) must
  match EXACTLY. They are bit-stable across machines and build
  flags, so any drift is a simulator semantics change that must be
  intentional (and must come with a regenerated committed JSON).
- timing_core records which core actually advanced the clock in the
  timed run ("event" / "reference", captured from the live pipeline
  by the harness). It must match the baseline exactly: a silent
  core fallback makes every throughput comparison meaningless, which
  is precisely how wide-issue configs lost the event core before the
  width-generalized accounting.
- Throughput (guest_mips) may not regress by more than the tolerance
  (default 5%, override with DARCO_PERF_TOLERANCE, e.g. "0.05").
  Wall-perf comparisons across different machines are noisy; the
  tolerance gates only egregious regressions, while the in-process
  event_core_speedup field stays machine-consistent.

Usage: check_perf.py <fresh.json> <committed.json>
       check_perf.py --update <fresh.json> <committed.json>

--update regenerates the committed baseline in place from the fresh
measurement (use after an intentional engine change: re-run
engine_speed on the measurement box, then commit the refreshed JSON).

Exit code 0 = pass, 1 = regression/mismatch, 2 = usage error.
"""

import json
import os
import shutil
import sys

DETERMINISM_FIELDS = ("guest_retired", "host_records", "sim_cycles",
                      "timing_core", "burst")

# Scenarios whose workloads are built to sit in the burst dispatcher's
# steady state: their committed AND fresh burst_fraction must clear
# the floor, so a predicate regression that silently stops bursts from
# forming (bit-identical results, quietly slower) fails CI instead of
# decaying the trajectory. The other scenarios' fractions are
# informational — their coverage is a workload property, not a
# contract.
BURST_FRACTION_FLOORS = {"dense_loop": 0.5}

# Why "burst" is a determinism field: the burst dispatcher
# (TimingConfig::burst) is bit-identical to the plain event core by
# construction — the three-way A/B tests and the harness's burst A/B
# enforce that — but a run with it off times a different dispatch
# engine, exactly like timing_core records which core advanced the
# clock. The harness records the field from the live pipeline (not
# the requested config), and this gate compares committed and fresh,
# so a silent toggle flip fails here before it can skew any
# guest_mips comparison.

# Why every scenario must report "execution": "serial": engine_speed
# samples are host timings of ONE simulation owning the whole
# process. The parallel batch runner exists for the figure sweeps
# (whose output is simulated quantities, immune to co-scheduling),
# but routing engine_speed through a worker pool would make scenarios
# share cache/bandwidth with each other, silently inflating
# `seconds` and corrupting every guest_mips / event_core_speedup
# comparison in the committed trajectory. The harness asserts this at
# runtime (engine_speed rejects --jobs > 1); this gate pins it in the
# committed JSON so a future code change cannot re-route it quietly.
SERIAL_ONLY_EXPLANATION = (
    "engine_speed scenarios must execute serially: the committed "
    "perf trajectory is a set of single-job host timings, and a "
    "scenario that ran through the parallel batch pool shared the "
    "process with other jobs, so its seconds/guest_mips numbers are "
    "not comparable with any committed baseline. Keep engine_speed "
    "off the BatchRunner path (it asserts --jobs <= 1) and "
    "regenerate the JSON serially.")

# Why every scenario must report "profile": "off": characterization
# profiling (MetricsOptions::profile) adds an exact stack-distance
# update per memory access plus a branch-predictor replica per
# branch. That is fine for the fig_reuse characterization bench, but
# an engine_speed sample taken with profiling live measures the
# profiler, not the engine, so its seconds/guest_mips are not
# comparable with any unprofiled baseline. The harness records the
# field from the live System (not the requested config), and this
# gate pins it on both sides so profiling cannot leak into the
# committed trajectory quietly.
PROFILE_OFF_EXPLANATION = (
    "engine_speed scenarios must run with characterization profiling "
    "off: a profiled run times the stack-distance engine and the "
    "branch-profile replica on top of the engine, so its "
    "seconds/guest_mips numbers are not comparable with any committed "
    "baseline. Keep MetricsOptions::profile off in the engine_speed "
    "harness (fig_reuse is the profiling bench) and regenerate the "
    "JSON unprofiled.")

# Why every scenario must report "verify": "off": the IR/regalloc
# verifier (TolConfig::verifyIr) is a pure observer — it cannot change
# any determinism field — but it re-derives reaching definitions,
# dependence edges and live intervals for every translation, which is
# real translation-path work. An engine_speed sample taken with it
# live times the verifier on top of the engine, so its
# seconds/guest_mips numbers are not comparable with any unverified
# baseline. The harness records the field from the live runtime (not
# the requested config), and this gate pins it on both sides;
# engine_speed's verify:on overhead A/B stays informational (stderr
# only, never committed).
VERIFY_OFF_EXPLANATION = (
    "engine_speed scenarios must run with IR verification off: a "
    "verified run times the IR/regalloc verifier's dataflow "
    "re-derivation on top of the engine, so its seconds/guest_mips "
    "numbers are not comparable with any committed baseline. Keep "
    "TolConfig::verifyIr off on timed engine_speed scenarios (ctest "
    "and fig_cfg are the verification gates) and regenerate the JSON "
    "unverified.")

# Why every scenario must report "cache": "off": the campaign result
# cache (BatchConfig::cacheDir, docs/campaigns.md) replays a stored
# RunSnapshot instead of simulating, so a cache-hit "run" takes
# microseconds of file I/O and its seconds/guest_mips measure the
# cache, not the engine. The simulated quantities stay bit-identical
# either way — which is exactly why only this gate can catch a
# cache-contaminated trajectory. The harness records the field from
# its own configuration (engine_speed never wires a cache dir), and
# this gate pins it on both sides so a future re-route through the
# cached campaign path fails here before anyone commits its output.
CACHE_OFF_EXPLANATION = (
    "engine_speed scenarios must run with the result cache off: a "
    "cache hit replays a stored snapshot instead of simulating, so "
    "its seconds/guest_mips numbers time file I/O rather than the "
    "engine and are not comparable with any committed baseline. Keep "
    "BatchConfig::cacheDir empty on the engine_speed path "
    "(run_benchmark --cache-dir is the campaign entry point) and "
    "regenerate the JSON uncached.")

UPDATE_HINT = (
    "If this change is intentional, regenerate the committed "
    "baseline in place:\n"
    "    (cd build && ./bench/engine_speed) && \\\n"
    "    python3 bench/check_perf.py --update "
    "build/BENCH_engine.json BENCH_engine.json\n"
    "and commit the refreshed BENCH_engine.json.\n"
    "Baseline runs must execute with every fault-tolerance knob off\n"
    "(no --timeout/--retries/--journal, no cancel token wired): a\n"
    "watchdog-cancelled or journal-replayed run measures a different\n"
    "experiment, and retry backoff pollutes the wall-clock numbers\n"
    "(docs/robustness.md).")


def update(fresh_path, committed_path):
    with open(fresh_path) as f:
        num_scenarios = len(json.load(f)["scenarios"])  # pre-copy check
    shutil.copyfile(fresh_path, committed_path)
    print(f"updated {committed_path} from {fresh_path} "
          f"({num_scenarios} scenarios)")
    return 0


def main(argv):
    if len(argv) > 1 and argv[1] == "--update":
        if len(argv) != 4:
            print(__doc__, file=sys.stderr)
            return 2
        return update(argv[2], argv[3])
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        fresh = json.load(f)["scenarios"]
    with open(argv[2]) as f:
        committed = json.load(f)["scenarios"]

    tolerance = float(os.environ.get("DARCO_PERF_TOLERANCE", "0.05"))
    failures = []

    for name, base in committed.items():
        # Both sides must record serial execution (see
        # SERIAL_ONLY_EXPLANATION): the committed baseline so the
        # repo never blesses a pool-contaminated trajectory, and the
        # fresh run so a re-routed harness fails here even before
        # anyone commits its output.
        if base.get("execution") != "serial":
            failures.append(f"{name}: committed scenario reports "
                            f"execution={base.get('execution')!r}. "
                            + SERIAL_ONLY_EXPLANATION)
        if base.get("profile") != "off":
            failures.append(f"{name}: committed scenario reports "
                            f"profile={base.get('profile')!r}. "
                            + PROFILE_OFF_EXPLANATION)
        if base.get("verify") != "off":
            failures.append(f"{name}: committed scenario reports "
                            f"verify={base.get('verify')!r}. "
                            + VERIFY_OFF_EXPLANATION)
        if base.get("cache") != "off":
            failures.append(f"{name}: committed scenario reports "
                            f"cache={base.get('cache')!r}. "
                            + CACHE_OFF_EXPLANATION)
        cur = fresh.get(name)
        if cur is None:
            failures.append(f"{name}: scenario disappeared from the "
                            "fresh measurement (every baseline "
                            "scenario must be re-measured)")
            continue
        if cur.get("execution") != "serial":
            failures.append(f"{name}: fresh scenario reports "
                            f"execution={cur.get('execution')!r}. "
                            + SERIAL_ONLY_EXPLANATION)
        if cur.get("profile") != "off":
            failures.append(f"{name}: fresh scenario reports "
                            f"profile={cur.get('profile')!r}. "
                            + PROFILE_OFF_EXPLANATION)
        if cur.get("verify") != "off":
            failures.append(f"{name}: fresh scenario reports "
                            f"verify={cur.get('verify')!r}. "
                            + VERIFY_OFF_EXPLANATION)
        if cur.get("cache") != "off":
            failures.append(f"{name}: fresh scenario reports "
                            f"cache={cur.get('cache')!r}. "
                            + CACHE_OFF_EXPLANATION)

        for field in DETERMINISM_FIELDS:
            if cur.get(field) != base.get(field):
                hint = ("a timing core silently changed: fix the "
                        "engine or intentionally re-baseline"
                        if field == "timing_core" else
                        "semantics change: regenerate the committed "
                        "JSON intentionally or fix the engine")
                failures.append(
                    f"{name}.{field}: determinism drift "
                    f"{base.get(field)} -> {cur.get(field)} ({hint})")

        floor = BURST_FRACTION_FLOORS.get(name)
        if floor is not None:
            for side, scen in (("committed", base), ("fresh", cur)):
                frac = scen.get("burst_fraction", 0)
                if frac < floor:
                    failures.append(
                        f"{name}.burst_fraction ({side}): {frac:.3f} "
                        f"below the {floor:.2f} floor — this scenario "
                        "exists to hold the burst dispatcher's "
                        "steady-state coverage; a collapse here means "
                        "the predicate regressed (results stay "
                        "bit-identical, the engine just quietly "
                        "stops accelerating)")

        base_mips = base.get("guest_mips", 0)
        cur_mips = cur.get("guest_mips", 0)
        if base_mips > 0 and cur_mips < base_mips * (1 - tolerance):
            failures.append(
                f"{name}.guest_mips: {base_mips:.3f} -> "
                f"{cur_mips:.3f} "
                f"({cur_mips / base_mips - 1:+.1%}, tolerance "
                f"-{tolerance:.0%})")
        else:
            delta = (cur_mips / base_mips - 1) if base_mips else 0.0
            print(f"  ok {name}: guest_mips {base_mips:.3f} -> "
                  f"{cur_mips:.3f} ({delta:+.1%})")

        # The in-process A/B ratio is load-matched and therefore far
        # less host-dependent than absolute MIPS: gate it with a
        # fixed absolute slack so the event core cannot quietly decay
        # back toward the reference core's speed.
        speedup = cur.get("event_core_speedup")
        base_speedup = base.get("event_core_speedup")
        if speedup is not None and base_speedup is not None:
            if speedup < base_speedup - 0.20:
                failures.append(
                    f"{name}.event_core_speedup: {base_speedup:.2f}x "
                    f"-> {speedup:.2f}x (allowed slack 0.20)")
            elif base_speedup > 1.0 and speedup <= 1.0:
                failures.append(
                    f"{name}.event_core_speedup: {speedup:.2f}x — "
                    "the event core lost to the reference core on a "
                    "scenario where the baseline has it winning "
                    f"({base_speedup:.2f}x)")
            else:
                print(f"     {name}: event_core_speedup "
                      f"{speedup:.2f}x (committed {base_speedup:.2f}x)")

    # The reverse direction is a failure too: a fresh scenario with
    # no committed baseline gets zero determinism/timing_core/speedup
    # coverage, so a new harness scenario must land together with a
    # regenerated committed JSON.
    for name in sorted(fresh.keys() - committed.keys()):
        failures.append(f"{name}: scenario has no committed baseline "
                        "(regenerate BENCH_engine.json so the new "
                        "scenario is gated)")

    if failures:
        print("PERF CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print(UPDATE_HINT, file=sys.stderr)
        return 1
    print("perf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
