/**
 * @file
 * Promotion-threshold ablation across the four suite representatives:
 * the full version of the analysis the paper elides ("analysis not
 * shown due to space limitations", §III-A). Reports overhead and mode
 * distribution for a grid of BB/SBth values.
 */

#include "bench_util.hh"

using namespace darco;
using bench::BenchArgs;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    if (args.budget > 2'000'000)
        args.budget = 2'000'000;

    const char *benchmarks[] = {
        "464.h264ref",     // SPEC INT
        "436.cactusADM",   // SPEC FP
        "104.novis_explosions",  // Physics
        "005.h264enc",     // Media
    };
    const uint32_t thresholds[] = {50, 150, 300, 1000, 3000, 10000};

    std::printf("=== BB/SB threshold ablation (IM/BBth=5) ===\n");
    Table t({"benchmark", "BB/SBth", "overhead%", "IM dyn%", "BBM dyn%",
             "SBM dyn%", "SBs", "cycles"});
    for (const char *name : benchmarks) {
        const workloads::Workload workload =
            workloads::resolveWorkload(workloads::syntheticUri(name));
        for (uint32_t threshold : thresholds) {
            sim::MetricsOptions options =
                bench::makeMetricsOptions(args);
            options.tolConfig.bbToSbThreshold = threshold;
            std::fprintf(stderr, "  %s / %u\n", name, threshold);
            const sim::BenchMetrics m =
                sim::runWorkload(workload, options);
            const double dyn = std::max<double>(
                1.0, static_cast<double>(m.dynTotal()));
            t.beginRow();
            t.add(name);
            t.addf("%u", threshold);
            t.addf("%.1f", 100.0 * m.tolOverheadFrac());
            t.addf("%.2f", 100.0 * static_cast<double>(m.dynIm) / dyn);
            t.addf("%.1f", 100.0 * static_cast<double>(m.dynBbm) / dyn);
            t.addf("%.1f", 100.0 * static_cast<double>(m.dynSbm) / dyn);
            t.addf("%llu",
                   static_cast<unsigned long long>(m.sbInvocations));
            t.addf("%llu", static_cast<unsigned long long>(m.cycles));
        }
    }
    bench::renderTable(t, args);
    return 0;
}
