/**
 * @file
 * Characterization bench: per-workload data-reuse-distance histograms
 * and branch-profile summaries from the exact Mattson stack-distance
 * engine (src/profile/), plus the analytic LRU miss-ratio curve each
 * histogram implies (docs/metrics.md "Characterization profiles").
 *
 * Every run doubles as a live cross-validation of the timing cache
 * model: the L1-D is reconfigured as a fully-associative true-LRU
 * cache, so Mattson's inclusion property makes the analytic expected
 * miss count a bit-exact oracle for the simulated miss counter. The
 * bench hard-fails on any divergence — the same invariant
 * tests/test_profile.cc pins under ctest, checked here at bench
 * budgets on every workload the sweep selects.
 */

#include <cinttypes>

#include "bench_util.hh"
#include "profile/analytic.hh"

using namespace darco;
using bench::BenchArgs;

namespace {

/** L1-D lines for the fully-associative validation geometry (matches
 *  the default 32 KiB / 64 B capacity, so miss counts stay in the
 *  same regime as the set-associative default). */
constexpr uint32_t kLines = 512;
constexpr uint32_t kLineBytes = 64;

/** Power-of-two reuse-distance bin label: [lo, hi]. */
std::string
binLabel(uint64_t lo, uint64_t hi)
{
    char buf[64];
    if (lo == hi)
        std::snprintf(buf, sizeof(buf), "%" PRIu64, lo);
    else
        std::snprintf(buf, sizeof(buf), "%" PRIu64 "-%" PRIu64, lo, hi);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    sim::MetricsOptions options = bench::makeMetricsOptions(args);
    options.profile = true;
    // Fully-associative true-LRU L1-D: the geometry under which the
    // analytic oracle is exact (Mattson inclusion needs a single
    // LRU stack, which set indexing would split).
    options.timingConfig.l1d = {kLines * kLineBytes, kLineBytes,
                                kLines, 1, true};

    struct Row
    {
        std::string name;
        std::string suite;
        profile::RunProfile prof;
        uint64_t simAccesses;
        uint64_t simMisses;
    };
    std::vector<Row> rows;
    for (const workloads::Workload &w : bench::selectWorkloads(args)) {
        std::fprintf(stderr, "  profiling %-24s ...\n", w.name.c_str());
        sim::MetricsOptions per_workload = options;
        sim::applyCaptureRecipe(per_workload, w);
        const sim::RunSnapshot snap = sim::snapshotRun(w, per_workload);
        fatal_if(!snap.profile, "profiling was enabled but the run "
                 "snapshot carries no profile");

        // The live cross-check: analytic expected LRU misses from the
        // measured histogram must equal the simulated fully-assoc
        // miss counter exactly, access for access.
        const profile::ReuseHistogram &hist = snap.profile->dataReuse;
        const uint64_t expected =
            profile::analytic::expectedLruMisses(hist, kLines);
        fatal_if(hist.totalAccesses() != snap.stats.l1d.accesses,
                 "%s: profiled %" PRIu64 " data accesses but the "
                 "timing L1-D saw %" PRIu64,
                 w.name.c_str(), hist.totalAccesses(),
                 snap.stats.l1d.accesses);
        fatal_if(expected != snap.stats.l1d.misses,
                 "%s: analytic LRU model expects %" PRIu64 " misses "
                 "but the simulated cache measured %" PRIu64,
                 w.name.c_str(), expected, snap.stats.l1d.misses);

        rows.push_back({w.name, w.suite, *snap.profile,
                        snap.stats.l1d.accesses, snap.stats.l1d.misses});
    }

    std::printf("=== Characterization: data reuse + branch profiles "
                "(line = %u B) ===\n", kLineBytes);
    Table summary({"benchmark", "suite", "accesses", "lines",
                   "cold%", "reuse<16%", "reuse<256%", "H(branch)",
                   "trans%", "mispred%", "LRU512 miss%"});
    for (const Row &r : rows) {
        const profile::ReuseHistogram &h = r.prof.dataReuse;
        const double total = static_cast<double>(h.totalAccesses());
        uint64_t lt16 = 0, lt256 = 0;
        for (const auto &[dist, count] : h.counts) {
            if (dist < 16)
                lt16 += count;
            if (dist < 256)
                lt256 += count;
        }
        summary.beginRow();
        summary.add(r.name);
        summary.add(r.suite);
        summary.addf("%" PRIu64, h.totalAccesses());
        summary.addf("%" PRIu64, h.distinctLines());
        summary.addf("%.2f", 100.0 * h.coldAccesses / total);
        summary.addf("%.2f", 100.0 * lt16 / total);
        summary.addf("%.2f", 100.0 * lt256 / total);
        summary.addf("%.3f", r.prof.branches.weightedEntropy());
        summary.addf("%.2f", 100.0 * r.prof.branches.transitionRate());
        summary.addf("%.2f", 100.0 * r.prof.branches.mispredictRate());
        summary.addf("%.3f", 100.0 * r.simMisses / total);
    }
    bench::renderTable(summary, args);

    std::printf("\n=== Reuse-distance histograms (power-of-two bins, "
                "%% of accesses) ===\n");
    Table histTable({"benchmark", "bin", "accesses", "%"});
    for (const Row &r : rows) {
        const profile::ReuseHistogram &h = r.prof.dataReuse;
        const double total = static_cast<double>(h.totalAccesses());
        auto it = h.counts.begin();
        for (uint64_t lo = 0, hi = 0; it != h.counts.end();
             lo = hi + 1, hi = 2 * hi + 1) {
            uint64_t binned = 0;
            for (; it != h.counts.end() && it->first <= hi; ++it)
                binned += it->second;
            if (!binned)
                continue;
            histTable.beginRow();
            histTable.add(r.name);
            histTable.add(binLabel(lo, hi));
            histTable.addf("%" PRIu64, binned);
            histTable.addf("%.2f", 100.0 * binned / total);
        }
        histTable.beginRow();
        histTable.add(r.name);
        histTable.add("cold");
        histTable.addf("%" PRIu64, h.coldAccesses);
        histTable.addf("%.2f", 100.0 * h.coldAccesses / total);
    }
    bench::renderTable(histTable, args);

    std::printf("\n=== Analytic LRU miss-ratio curves (fully "
                "associative, from the histogram alone) ===\n");
    Table curve({"benchmark", "lines", "misses", "miss%"});
    for (const Row &r : rows) {
        for (const profile::analytic::MissCurvePoint &p :
             profile::analytic::missRatioCurve(r.prof.dataReuse)) {
            curve.beginRow();
            curve.add(r.name);
            curve.addf("%" PRIu64, p.lines);
            curve.addf("%" PRIu64, p.misses);
            curve.addf("%.3f", 100.0 * p.missRatio);
        }
    }
    bench::renderTable(curve, args);

    std::printf("\nanalytic cross-check: expected LRU misses matched "
                "the simulated fully-associative L1-D exactly on all "
                "%zu workload(s)\n", rows.size());
    return 0;
}
