/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own components:
 * host-time throughput of the caches, branch predictor, guest
 * decoder, authoritative emulator, IR optimization pipeline, and the
 * end-to-end system. Useful for keeping the simulator fast enough for
 * large sweeps.
 */

#include <benchmark/benchmark.h>

#include "common/prng.hh"
#include "guest/assembler.hh"
#include "guest/emulator.hh"
#include "ir/passes.hh"
#include "ir/regalloc.hh"
#include "ir/scheduler.hh"
#include "sim/system.hh"
#include "timing/cache.hh"
#include "timing/pipeline.hh"
#include "tol/translator.hh"
#include "workloads/params.hh"

using namespace darco;
namespace g = darco::guest;

namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    timing::TimingConfig cfg;
    timing::Cache l2(cfg.l2, nullptr, cfg.memLatency);
    timing::Cache l1(cfg.l1d, &l2, cfg.memLatency);
    Prng rng(1);
    uint64_t total = 0;
    for (auto _ : state) {
        bool miss;
        total += l1.access(
            static_cast<uint32_t>(rng.below(1u << 22)), false, miss);
    }
    benchmark::DoNotOptimize(total);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_BranchPredictor(benchmark::State &state)
{
    timing::TimingConfig cfg;
    timing::BranchPredictor bp(cfg);
    Prng rng(2);
    uint64_t correct = 0;
    for (auto _ : state) {
        const uint32_t pc = 0x1000 + 4 * (rng.next() % 64);
        correct += bp.predict(pc, rng.chance(0.7), 0x2000, true, false);
    }
    benchmark::DoNotOptimize(correct);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredictor);

void
BM_GuestDecode(benchmark::State &state)
{
    g::Assembler as;
    Prng rng(3);
    for (int i = 0; i < 500; ++i) {
        as.add(g::EAX, static_cast<int32_t>(rng.next()));
        as.mov(g::EBX, g::mem(g::ESI, g::ECX, 2, 16));
    }
    as.halt();
    g::Program prog;
    prog.code = as.finalize(prog.codeBase);

    size_t pos = 0;
    for (auto _ : state) {
        g::Inst inst;
        g::decode(prog.code.data() + pos, prog.code.size() - pos, inst);
        pos += inst.length;
        if (pos + g::kMaxInstLength >= prog.code.size())
            pos = 0;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuestDecode);

void
BM_EmulatorStep(benchmark::State &state)
{
    g::Assembler as;
    as.mov(g::EAX, 0);
    as.mov(g::ECX, 1 << 30);
    auto loop = as.newLabel();
    as.bind(loop);
    as.add(g::EAX, g::ECX);
    as.xor_(g::EAX, 0x55);
    as.dec(g::ECX);
    as.jcc(g::Cond::NE, loop);
    as.halt();
    g::Program prog;
    prog.code = as.finalize(prog.codeBase);
    prog.entry = prog.codeBase;

    g::Memory mem;
    g::Emulator emu(mem);
    emu.reset(prog);
    for (auto _ : state) {
        if (!emu.step())
            emu.reset(prog);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmulatorStep);

void
BM_OptimizationPipeline(benchmark::State &state)
{
    // Translate a realistic guest block once per iteration and run
    // the full SBM pass pipeline over it.
    g::Assembler as;
    Prng rng(4);
    for (int i = 0; i < 24; ++i) {
        as.add(g::EAX, g::EBX);
        as.mov(g::EDX, g::mem(g::ESI, 8));
        as.imul(g::EDX, 3);
        as.mov(g::mem(g::ESI, 8), g::EDX);
        as.cmp(g::EAX, g::EDX);
    }
    auto t = as.newLabel();
    as.jcc(g::Cond::L, t);
    as.bind(t);
    as.halt();
    g::Program prog;
    prog.code = as.finalize(prog.codeBase);

    host::Memory hmem;
    hmem.writeBytes(prog.codeBase, prog.code.data(), prog.code.size());
    tol::GuestCodeReader reader(hmem);
    tol::TolConfig cfg;
    tol::Translator translator(cfg);

    std::vector<tol::PathInst> path;
    uint32_t eip = prog.codeBase;
    for (;;) {
        const g::Inst &inst = reader.at(eip);
        path.push_back(tol::PathInst{inst, eip, false});
        if (g::opInfo(inst.op).isBranch || inst.op == g::Op::HALT)
            break;
        eip += inst.length;
    }

    for (auto _ : state) {
        ir::Trace trace = translator.translate(path);
        ir::PassStats ps;
        ir::copyPropagation(trace, &ps);
        ir::constantPropagation(trace, &ps);
        ir::commonSubexpressionElimination(trace, &ps);
        ir::copyPropagation(trace, &ps);
        ir::deadCodeElimination(trace, &ps);
        ir::scheduleTrace(trace);
        const ir::Allocation alloc = ir::allocateRegisters(trace);
        benchmark::DoNotOptimize(alloc.numSpillSlots);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(path.size()));
}
BENCHMARK(BM_OptimizationPipeline);

void
BM_EventCorePipeline(benchmark::State &state)
{
    // Event-core record throughput with the burst dispatcher off/on
    // (arg 1) over two stream shapes (arg 0): a serial dependence
    // chain where bursts never form — the off/on delta there is the
    // pure cost of the burst predicate, which the prev-full throttle
    // must keep at zero — and an independent full-width stream where
    // the dispatcher retires nearly every cycle, the off/on delta
    // being its headline win.
    const bool dense = state.range(0) != 0;
    timing::TimingConfig cfg;
    cfg.eventCore = true;
    cfg.burst = state.range(1) != 0;

    std::vector<timing::Record> stream;
    for (uint32_t i = 0; i < 4096; ++i) {
        timing::Record rec;
        rec.pc = 0x1000 + 4 * (i % 16);
        rec.op = host::HOp::ADD;
        rec.rd = dense ? static_cast<uint8_t>(33 + i % 8) : 33;
        rec.rs1 = dense ? 32 : 33;
        rec.rs2 = rec.rs1;
        rec.fromRegion = true;
        stream.push_back(rec);
    }

    timing::Pipeline pipe(cfg, timing::Pipeline::Filter::All);
    for (auto _ : state)
        pipe.consumeBatch(stream.data(), stream.size());
    pipe.finish();
    benchmark::DoNotOptimize(pipe.stats().cycles);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(stream.size()));
    state.SetLabel(std::string(dense ? "dense" : "serial") +
                   (cfg.burst ? "/burst" : "/no-burst"));
}
BENCHMARK(BM_EventCorePipeline)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1});

void
BM_EndToEndGuestInstructions(benchmark::State &state)
{
    // Whole-system throughput in guest instructions per host second.
    for (auto _ : state) {
        sim::SimConfig cfg;
        cfg.guestBudget = 200'000;
        cfg.tol.bbToSbThreshold = 300;
        sim::System sys(cfg);
        sys.load(workloads::buildBenchmark(
            *workloads::findBenchmark("464.h264ref")));
        const sim::SystemResult res = sys.run();
        benchmark::DoNotOptimize(res.cycles);
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<int64_t>(res.guestRetired));
    }
}
BENCHMARK(BM_EndToEndGuestInstructions)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
