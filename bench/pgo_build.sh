#!/bin/sh
# Two-phase PGO build of the simulator, trained on the engine-speed
# scenarios. Produces build-pgo/bench/engine_speed (and the rest of
# the tree) laid out for the hot per-cycle loops, worth ~20% over the
# plain Release build. Run from the repository root:
#
#   sh bench/pgo_build.sh [build-dir]
#
set -e
BUILD=${1:-build-pgo}

cmake -B "$BUILD" -S . -DDARCO_PGO_GENERATE=ON -DDARCO_PGO_USE=OFF
cmake --build "$BUILD" -j --target engine_speed
(cd "$BUILD" && ./bench/engine_speed >/dev/null)

# Reconfigure in place: the .gcda files sit next to the objects.
cmake -B "$BUILD" -S . -DDARCO_PGO_GENERATE=OFF -DDARCO_PGO_USE=ON
cmake --build "$BUILD" -j
echo "PGO build ready in $BUILD/"
