#!/bin/sh
# Two-phase PGO build of the simulator, trained on the engine-speed
# scenarios. Produces build-pgo/bench/engine_speed laid out for the
# hot per-cycle loops, worth ~20% over the plain Release build. Run
# from the repository root:
#
#   sh bench/pgo_build.sh [build-dir] [profile-cache-dir]
#
# The final optimized build is scoped to engine_speed by default
# (what CI smoke-runs); set DARCO_PGO_TARGET=all for the whole tree
# (figure benches, tests) under PGO.
#
# With a profile-cache-dir, the .gcda files from the training run are
# stored there as one tarball stamped with a fingerprint of the
# sources that produced it, and a later invocation whose sources
# still match skips the instrumented build + training run entirely.
# A .gcda profile is only valid for the exact sources it was trained
# on (gcc hard-errors on coverage mismatches under -fprofile-use), so
# any fingerprint drift retrains. CI additionally keys its cache on
# the same inputs plus the compiler version.
set -e
BUILD=${1:-build-pgo}
PROFILE=${2:-}

# Everything that feeds the trained objects, mirroring the CI cache
# key (src/**, bench/**, CMakeLists.txt).
src_fingerprint() {
    {
        find src bench -type f -print0 | sort -z | xargs -0 cat
        cat CMakeLists.txt
    } | cksum
}

if [ -n "$PROFILE" ]; then
    mkdir -p "$PROFILE"
    PROFILE=$(cd "$PROFILE" && pwd)
    FINGERPRINT=$(src_fingerprint)
fi

if [ -n "$PROFILE" ] && [ -s "$PROFILE/profile.tar" ] &&
   [ "$(cat "$PROFILE/source.fingerprint" 2>/dev/null)" = \
     "$FINGERPRINT" ]; then
    echo "pgo_build: reusing cached training profile" \
         "($PROFILE/profile.tar); skipping the training run"
    cmake -B "$BUILD" -S . -DDARCO_PGO_GENERATE=OFF -DDARCO_PGO_USE=ON
    tar -xf "$PROFILE/profile.tar" -C "$BUILD"
else
    cmake -B "$BUILD" -S . -DDARCO_PGO_GENERATE=ON -DDARCO_PGO_USE=OFF
    cmake --build "$BUILD" -j --target engine_speed
    (cd "$BUILD" && ./bench/engine_speed >/dev/null)
    if [ -n "$PROFILE" ]; then
        GCDA_LIST=$(cd "$BUILD" && find . -name '*.gcda' -print)
        if [ -n "$GCDA_LIST" ]; then
            (cd "$BUILD" && find . -name '*.gcda' -print |
                 tar -cf "$PROFILE/profile.tar" -T -)
            printf '%s\n' "$FINGERPRINT" \
                > "$PROFILE/source.fingerprint"
            echo "pgo_build: stored training profile in" \
                 "$PROFILE/profile.tar"
        else
            # Never cache an empty profile: that would skip training
            # forever while providing no profile data.
            rm -f "$PROFILE/profile.tar" "$PROFILE/source.fingerprint"
            echo "pgo_build: training produced no .gcda files;" \
                 "nothing cached" >&2
        fi
    fi
    # Reconfigure in place: the .gcda files sit next to the objects.
    cmake -B "$BUILD" -S . -DDARCO_PGO_GENERATE=OFF -DDARCO_PGO_USE=ON
fi

cmake --build "$BUILD" -j --target "${DARCO_PGO_TARGET:-engine_speed}"
echo "PGO build ready in $BUILD/"
