/**
 * @file
 * Feature ablation: quantifies each TOL design choice the paper's
 * §III-E discussion calls out — chaining, the IBTC, the BBM "simple
 * optimizations", the full SBM pass pipeline, and instruction
 * scheduling — by toggling one at a time on a representative
 * benchmark subset and reporting the cycle cost of losing it.
 */

#include "bench_util.hh"

using namespace darco;
using bench::BenchArgs;

namespace {

struct Variant
{
    const char *name;
    void (*apply)(tol::TolConfig &);
};

const Variant kVariants[] = {
    {"baseline", [](tol::TolConfig &) {}},
    {"no chaining",
     [](tol::TolConfig &cfg) { cfg.enableChaining = false; }},
    {"no IBTC", [](tol::TolConfig &cfg) { cfg.enableIbtc = false; }},
    {"no BBM opts",
     [](tol::TolConfig &cfg) { cfg.enableBbmOpts = false; }},
    {"no SBM opts",
     [](tol::TolConfig &cfg) { cfg.enableSbmOpts = false; }},
    {"no scheduling",
     [](tol::TolConfig &cfg) { cfg.enableScheduling = false; }},
    {"2-way IBTC", [](tol::TolConfig &cfg) { cfg.ibtcWays = 2; }},
    {"SB code partition",
     [](tol::TolConfig &cfg) { cfg.sbPartitionPercent = 50; }},
    {"no prefetcher", [](tol::TolConfig &) {}},  // timing-side toggle
};

const char *kBenchmarks[] = {
    "400.perlbench", "401.bzip2", "464.h264ref", "470.lbm",
    "000.cjpeg", "007.jpg2000enc",
};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    if (args.budget > 2'000'000)
        args.budget = 2'000'000;  // 7 variants x 6 benchmarks

    std::printf("=== Feature ablation (cycles, relative to baseline) "
                "===\n");
    Table t({"benchmark", "variant", "cycles", "vs baseline",
             "overhead%"});

    for (const char *name : kBenchmarks) {
        const workloads::Workload workload =
            workloads::resolveWorkload(workloads::syntheticUri(name));

        uint64_t baseline_cycles = 0;
        for (const Variant &variant : kVariants) {
            sim::MetricsOptions options =
                bench::makeMetricsOptions(args);
            variant.apply(options.tolConfig);
            if (std::string(variant.name) == "no prefetcher")
                options.timingConfig.prefetcherEnabled = false;

            std::fprintf(stderr, "  %s / %s\n", name, variant.name);
            const sim::BenchMetrics m =
                sim::runWorkload(workload, options);
            if (std::string(variant.name) == "baseline")
                baseline_cycles = m.cycles;

            t.beginRow();
            t.add(name);
            t.add(variant.name);
            t.addf("%llu", static_cast<unsigned long long>(m.cycles));
            t.addf("%+.1f%%",
                   100.0 * (static_cast<double>(m.cycles) /
                                static_cast<double>(baseline_cycles) -
                            1.0));
            t.addf("%.1f", 100.0 * m.tolOverheadFrac());
        }
    }
    bench::renderTable(t, args);
    return 0;
}
