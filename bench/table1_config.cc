/**
 * @file
 * Table I regeneration: the host processor microarchitectural
 * parameters used across all experiments.
 */

#include "bench_util.hh"
#include "timing/config.hh"

using namespace darco;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
    const timing::TimingConfig c;

    std::printf("=== Table I: host processor microarchitectural "
                "parameters ===\n");
    Table t({"component", "parameter", "value"});
    auto row = [&t](const char *comp, const char *param,
                    std::string value) {
        t.beginRow();
        t.add(comp);
        t.add(param);
        t.add(std::move(value));
    };

    row("General", "Issue width", strprintf("%u", c.issueWidth));
    row("Instruction queue", "Size", strprintf("%u", c.iqSize));
    row("Branch predictor", "Size of history register",
        strprintf("%u", c.bpHistoryBits));
    row("L1 I-Cache / L1 D-Cache", "Size",
        strprintf("%uKB", c.l1i.sizeBytes / 1024));
    row("L1 I-Cache / L1 D-Cache", "Block size/Associativity",
        strprintf("%uB/%u", c.l1i.lineBytes, c.l1i.ways));
    row("L1 I-Cache / L1 D-Cache", "Replacement policy", "PLRU");
    row("L1 I-Cache / L1 D-Cache", "Hit latency",
        strprintf("%u", c.l1i.hitLatency));
    row("Stride prefetcher", "Number of entries",
        strprintf("%u", c.prefetcherEntries));
    row("L2 U-Cache", "Size", strprintf("%uKB", c.l2.sizeBytes / 1024));
    row("L2 U-Cache", "Block size/Associativity",
        strprintf("%uB/%u", c.l2.lineBytes, c.l2.ways));
    row("L2 U-Cache", "Replacement policy", "PLRU");
    row("L2 U-Cache", "Hit latency", strprintf("%u", c.l2.hitLatency));
    row("Main memory", "Hit latency", strprintf("%u", c.memLatency));
    row("L1 TLB", "Entries",
        strprintf("%u/%u way", c.tlbL1Entries, c.tlbL1Ways));
    row("L1 TLB", "Replacement policy", "PLRU");
    row("L1 TLB", "Hit latency", strprintf("%u", c.tlbL1Latency));
    row("L2 TLB", "Entries",
        strprintf("%u/%u way", c.tlbL2Entries, c.tlbL2Ways));
    row("L2 TLB", "Replacement policy", "PLRU");
    row("L2 TLB", "Hit latency", strprintf("%u", c.tlbL2Latency));

    bench::renderTable(t, args);
    std::printf("(not in the paper's table, our defaults: BTB %ux%u-way,"
                " TLB walk %u cycles, mispredict penalty %u)\n",
                c.btbEntries / c.btbWays, c.btbWays, c.tlbWalkLatency,
                c.mispredictPenalty);
    return 0;
}
