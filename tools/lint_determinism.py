#!/usr/bin/env python3
"""Determinism lint: text-level gate over src/ (no compiler needed).

The engine's core contract is that every measured quantity is a pure
function of (workload, config) — bit-identical across machines, pool
sizes, retries and journal replays. Two classes of source-level drift
can silently break that contract long before any test notices:

1. **Clock or randomness reads in engine code.** A `rand()` seeded
   from time, a `std::chrono` timestamp influencing a threshold, a
   `clock()` call feeding a heuristic — any of these makes two runs
   of the same cell different experiments. The only legitimate
   consumers of wall-clock time are the fault-tolerance *wiring*:
   the watchdog's deadline arithmetic and the retry backoff sleep
   (docs/robustness.md §2–3), which by design change whether a result
   exists, never what it measures. Those files are allowlisted below;
   everything else under src/ must be clock-free and RNG-free
   (workload generation uses its own seeded LCG, which is exactly the
   point: seeds are config, clocks are not).

2. **Unclassified `fatal()` in retry-relevant subsystems.** The
   error taxonomy (sim/run_error.hh) maps classified fatal sites
   (`fatal_kind(...)`) to retry decisions; an unclassified `fatal()`
   lands in `Internal` and is never retried. That is the correct
   *default*, but inside the subsystems a batch campaign actually
   executes (sim, tol, timing, ir, guest, profile) an unclassified
   site is almost always an unfinished thought: either the failure is
   environmental (should be `IoTransient`/`TraceCorrupt`/...) or it
   is a genuine invariant violation (should say so via
   `ErrKind::Internal` explicitly, like the IR verifier does). New
   fatal sites there must pick a kind — or carry an explicit
   `det-lint: allow(<why>)` marker on the same line, as the
   fault-injection point modeling "unclassified engine fatal" does.

Exit 0 = clean, 1 = findings (printed one per line), 2 = usage error.
Run from anywhere: paths resolve relative to the repo root.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# ---------------------------------------------------------------------
# Rule 1: clocks and randomness
# ---------------------------------------------------------------------

# The fault-tolerance wiring may read the clock (watchdog deadlines,
# backoff sleeps, wall-clock telemetry in the batch runner's progress
# accounting). Nothing it computes from those reads feeds a measured
# quantity — enforced by the bit-identical parallel-vs-serial and
# kill-and-resume A/Bs in the test suite.
#
# The campaign scale-out layer (src/runner/ journal + result cache,
# docs/campaigns.md) does file I/O — journal appends, cache entry
# reads, atomic rename-on-commit writes — but needs NO allowlist
# entry and must never grow one for clocks or randomness: its
# temp-file uniqueness comes from getpid() plus a process-local
# atomic sequence, its hit/verify selection hashes the config
# fingerprint, and everything it stores or replays is a checksummed
# snapshot of already-deterministic quantities. If cache code ever
# appears to need a clock or RNG, that is a design smell (a
# content-addressed cache keyed on pure inputs has no use for
# either), not grounds for widening this list. The sim-core ban
# (everything outside these three files) stays absolute.
CLOCK_ALLOWLIST = {
    "src/runner/watchdog.hh",
    "src/runner/watchdog.cc",
    "src/runner/batch_runner.cc",
}

CLOCK_PATTERNS = [
    (re.compile(r"(?<![A-Za-z0-9_:])s?rand\s*\("), "C rand()/srand()"),
    (re.compile(r"(?<![A-Za-z0-9_:])random\s*\("), "C random()"),
    (re.compile(r"\bdrand48\b|\blrand48\b"), "C *rand48()"),
    (re.compile(r"(?<![A-Za-z0-9_:.])time\s*\("), "C time()"),
    (re.compile(r"(?<![A-Za-z0-9_:.])clock\s*\("), "C clock()"),
    (re.compile(r"\bclock_gettime\b|\bgettimeofday\b"),
     "POSIX clock read"),
    (re.compile(r"\bstd::chrono\b"), "std::chrono"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
]

# ---------------------------------------------------------------------
# Rule 2: unclassified fatal() in retry-relevant subsystems
# ---------------------------------------------------------------------

FATAL_DIRS = ("src/sim", "src/tol", "src/timing", "src/ir",
              "src/guest", "src/profile")

UNCLASSIFIED_FATAL = re.compile(r"(?<![A-Za-z0-9_])fatal(_if)?\s*\(")

ALLOW_MARKER = re.compile(r"det-lint:\s*allow\(")


def strip_comments(text):
    """Remove // and /* */ comments (string literals are not parsed:
    engine diagnostics never contain the scanned tokens, and a false
    positive is a visible lint failure, not silent acceptance)."""
    text = re.sub(r"/\*.*?\*/", lambda m: "\n" * m.group(0).count("\n"),
                  text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def scan():
    findings = []
    for root, _dirs, files in os.walk(os.path.join(REPO, "src")):
        for name in sorted(files):
            if not name.endswith((".cc", ".hh")):
                continue
            path = os.path.join(root, name)
            rel = os.path.relpath(path, REPO)
            with open(path, encoding="utf-8") as f:
                raw_lines = f.read().splitlines()
            code_lines = strip_comments("\n".join(raw_lines)).splitlines()

            for lineno, (raw, code) in enumerate(
                    zip(raw_lines, code_lines), start=1):
                # The allow marker covers its own line and the two
                # following lines (it lives in a comment immediately
                # above the site it excuses).
                if any(ALLOW_MARKER.search(raw_lines[i])
                       for i in range(max(0, lineno - 3), lineno)):
                    continue
                if rel not in CLOCK_ALLOWLIST:
                    for pattern, what in CLOCK_PATTERNS:
                        if pattern.search(code):
                            findings.append(
                                f"{rel}:{lineno}: {what} in engine "
                                f"code (determinism: clocks/RNG are "
                                f"allowed only in the watchdog/backoff "
                                f"wiring): {raw.strip()}")
                if rel.startswith(FATAL_DIRS):
                    if UNCLASSIFIED_FATAL.search(code):
                        findings.append(
                            f"{rel}:{lineno}: unclassified fatal() in "
                            f"a retry-relevant subsystem — use "
                            f"fatal_kind(ErrKind::...) so the error "
                            f"taxonomy can classify it, or mark the "
                            f"line 'det-lint: allow(<why>)': "
                            f"{raw.strip()}")
    return findings


def main(argv):
    if len(argv) > 1:
        print(__doc__, file=sys.stderr)
        return 2
    findings = scan()
    if findings:
        print("DETERMINISM LINT FAILED:", file=sys.stderr)
        for f in findings:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("determinism lint passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
